// Campaign: the top-level public API.
//
// Builds the whole stack — simulated host, kernel, engine, one pinned
// container per fuzzing thread, observer, oracles, fuzzer — from a single
// config (the paper's §4.2 experimental setup is the default), runs batches
// of seeds through the fuzzing loop, then post-processes the round log:
// flag scan (§3.6.1), single-program confirmation, Algorithm-3 minimization,
// and trace-based cause classification (§4.1.4).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/classify.h"
#include "core/fuzzer.h"
#include "core/minimize.h"
#include "core/provenance.h"
#include "exec/executor.h"
#include "feedback/corpus.h"
#include "kernel/kernel.h"
#include "observer/observer.h"
#include "oracle/oracle.h"
#include "runtime/engine.h"
#include "sim/noise.h"

namespace torpedo::telemetry {
class HeartbeatWriter;
class LiveStatus;
class TimeSeriesRecorder;
class TraceSink;
class Watchdog;
}  // namespace torpedo::telemetry

namespace torpedo::core {

struct CampaignConfig {
  // --- §4.2 experimental setup defaults ---
  runtime::RuntimeKind runtime = runtime::RuntimeKind::kRunc;
  int num_executors = 3;              // "3 parallel threads"
  Nanos round_duration = 5 * kSecond; // "5 second rounds"
  double cpus_per_container = 1.0;    // --cpus
  bool pin_executors = true;          // --cpuset-cpus 0 / 1 / 2
  std::int64_t memory_bytes_per_container = -1;  // -m; -1 == unlimited
  std::size_t num_seeds = 40;         // "groups ranging in size from 10 to 40"
  int batches = 8;
  std::uint64_t seed = 0x7095ED0;

  // Snapshot-exec (--snapshot-exec, default on): boot-once / restore-per-
  // program execution. Prime pre-lowers each program into a ProgramImage and
  // iterations patch only the dirty result slots; the kernel caches VFS path
  // resolutions behind a generation counter; the observer samples only live
  // tasks. Every gated path is bit-exact in simulated behavior and consumes
  // the same RNG stream, so artifacts are byte-identical with it off — only
  // wall-clock changes. Verified by `torpedo selftest --replay`.
  bool snapshot_exec = true;

  // Post-processing limits.
  std::size_t max_confirmations = 48;

  bool install_noise = true;
  sim::NoiseConfig noise;
  kernel::KernelConfig kernel;
  FuzzerConfig fuzzer;
  exec::ExecConfig exec;
  prog::GenConfig gen;
  prog::MutateConfig mutate;
  oracle::CpuOracleConfig cpu_oracle;
  oracle::IoOracleConfig io_oracle;
  observer::ObserverConfig observer;  // round_duration is overridden
};

struct CampaignReport {
  std::vector<Finding> findings;
  std::vector<CrashFinding> crashes;
  // Causal evidence per finding: provenance[i].finding_index indexes into
  // findings. write_violation_bundles() persists these as
  // workdir/violations/NNN/.
  std::vector<Provenance> provenance;
  int batches = 0;
  int rounds = 0;
  std::uint64_t executions = 0;
  std::size_t corpus_size = 0;
  std::vector<std::string> denylist;
  // Flag-scan statistics (also exported as campaign.* telemetry counters).
  int suspects = 0;           // distinct programs the flag scan implicated
  int crash_suspects = 0;     // distinct programs present in crashed rounds
  int confirmations_run = 0;  // single-program confirmation rounds spent
};

// Which batch slots a round's violations implicate. `core_to_slot` maps a
// host core to the executor slot pinned there; pass an empty map when the
// executors are not each pinned to their own single core — every violation
// then implicates the whole batch (per-core attribution would be guesswork).
std::vector<bool> implicated_slots(
    const std::vector<oracle::Violation>& violations, std::size_t num_slots,
    const std::unordered_map<int, std::size_t>& core_to_slot);

class Campaign {
 public:
  explicit Campaign(CampaignConfig config = {});
  ~Campaign();

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  // Load the default Moonshine-like corpus (config.num_seeds) or custom
  // seeds; then run() fuzzes `config.batches` batches and post-processes.
  void load_default_seeds();
  void load_seeds(std::vector<prog::Program> seeds);
  CampaignReport run();

  // Finer-grained control (benches use these).
  BatchResult run_one_batch();
  CampaignReport finalize();

  // Streams one JSONL record per observed round (plus batch/campaign
  // events) to `sink`; nullptr disables. Caller keeps ownership.
  void set_trace_sink(telemetry::TraceSink* sink);

  // Live-monitor wiring (all optional; caller keeps ownership, nullptr
  // disables). `status` is refreshed and `heartbeat` stamped at every round
  // boundary; `watchdog`'s abort flag is honored at batch round boundaries
  // (the stalled batch retires cleanly and the flag is re-armed).
  void set_live_status(telemetry::LiveStatus* status);
  void set_heartbeat(telemetry::HeartbeatWriter* heartbeat);
  void set_watchdog(telemetry::Watchdog* watchdog);
  // Signal-growth time series: fed one sample per round (sim stamps only —
  // the flushed artifact stays byte-deterministic). Entering a plateau bumps
  // the `campaign.plateaus` counter and updates the live status.
  void set_timeseries(telemetry::TimeSeriesRecorder* timeseries);

  // Host core -> executor slot, derived from the containers' *actual*
  // effective cpusets. Empty unless every executor is pinned to its own
  // single core (e.g. pin_executors == false), in which case per-core
  // violation attribution is impossible.
  std::unordered_map<int, std::size_t> executor_core_map() const;

  // Component access.
  kernel::SimKernel& kernel() { return *kernel_; }
  runtime::Engine& engine() { return *engine_; }
  observer::Observer& observer() { return *observer_; }
  oracle::CpuOracle& cpu_oracle() { return *cpu_oracle_; }
  oracle::IoOracle& io_oracle() { return *io_oracle_; }
  TorpedoFuzzer& fuzzer() { return *fuzzer_; }
  feedback::Corpus& corpus() { return corpus_; }
  exec::Executor& executor(std::size_t i) { return *executors_[i]; }
  const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
  std::unique_ptr<kernel::SimKernel> kernel_;
  std::unique_ptr<runtime::Engine> engine_;
  std::vector<std::unique_ptr<exec::Executor>> executors_;
  std::unique_ptr<observer::Observer> observer_;
  std::unique_ptr<oracle::CpuOracle> cpu_oracle_;
  std::unique_ptr<oracle::IoOracle> io_oracle_;
  std::unique_ptr<oracle::MemoryOracle> memory_oracle_;
  std::unique_ptr<prog::Generator> generator_;
  std::unique_ptr<prog::Mutator> mutator_;
  feedback::Corpus corpus_;
  std::unique_ptr<TorpedoFuzzer> fuzzer_;
  // Incremental flag-scan state (§3.6.1): suspects are collected round by
  // round from the observer hook, so the round log can be pruned between
  // batches without losing findings. Defined in campaign.cpp.
  struct ScanState;
  std::unique_ptr<ScanState> scan_;
  void on_round(const observer::RoundResult& rr);
  void scan_round(const observer::RoundResult& rr);

  int batches_run_ = 0;
  telemetry::TraceSink* trace_ = nullptr;
  telemetry::LiveStatus* live_status_ = nullptr;
  telemetry::HeartbeatWriter* heartbeat_ = nullptr;
  telemetry::Watchdog* watchdog_ = nullptr;
  telemetry::TimeSeriesRecorder* timeseries_ = nullptr;
  // Running execution total maintained at round boundaries (the fuzzer's own
  // total lags until its batch accounting runs).
  std::uint64_t live_executions_ = 0;
  // Cumulative flag-scan violations (the timeseries' violations column).
  std::uint64_t violations_flagged_ = 0;
};

}  // namespace torpedo::core
