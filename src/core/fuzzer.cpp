#include "core/fuzzer.h"

#include <algorithm>
#include <cmath>

#include "feedback/mutation_efficacy.h"
#include "feedback/syscall_profile.h"
#include "telemetry/span.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"

namespace torpedo::core {

namespace {
feedback::OriginOp origin_of(prog::MutationOp op) {
  switch (op) {
    case prog::MutationOp::kSplice:
      return feedback::OriginOp::kSplice;
    case prog::MutationOp::kInsertCall:
      return feedback::OriginOp::kInsertCall;
    case prog::MutationOp::kRemoveCall:
      return feedback::OriginOp::kRemoveCall;
    default:
      return feedback::OriginOp::kMutateArg;
  }
}
}  // namespace

TorpedoFuzzer::TorpedoFuzzer(observer::Observer& observer,
                             oracle::Oracle& oracle,
                             prog::Generator& generator,
                             prog::Mutator& mutator, feedback::Corpus& corpus,
                             FuzzerConfig config)
    : observer_(observer),
      oracle_(oracle),
      generator_(generator),
      mutator_(mutator),
      corpus_(corpus),
      config_(config) {
  telemetry::Registry& metrics = telemetry::global();
  ctr_batches_ = &metrics.counter("fuzzer.batches");
  ctr_mutations_tried_ = &metrics.counter("fuzzer.mutations_tried");
  ctr_mutations_accepted_ = &metrics.counter("fuzzer.mutations_accepted");
  ctr_confirm_rejections_ = &metrics.counter("fuzzer.confirm_rejections");
  ctr_novelty_hits_ = &metrics.counter("fuzzer.corpus_novelty_hits");
  ctr_candidates_recycled_ = &metrics.counter("fuzzer.candidates_recycled");
  ctr_denylist_adds_ = &metrics.counter("fuzzer.denylist_adds");
  gauge_denylist_size_ = &metrics.gauge("fuzzer.denylist_size");
}

void TorpedoFuzzer::add_seed(prog::Program program) {
  program.filter_calls(denylist_);
  if (!program.empty()) queue_.push_back(std::move(program));
}

bool TorpedoFuzzer::equivalent(double a, double b) const {
  const double base = std::max(std::abs(a), std::abs(b));
  if (base == 0) return true;
  return std::abs(a - b) <= base * config_.equivalence_band_pct / 100.0;
}

void TorpedoFuzzer::learn_denylist(const prog::Program& program,
                                   const exec::RunStats& stats) {
  if (!config_.auto_denylist) return;
  if (stats.executions > config_.blocked_execution_threshold) return;
  if (stats.crashed) return;
  // The round was spent blocked: denylist this program's known-blocking
  // calls so neither generation nor future seeds repeat the mistake.
  bool changed = false;
  for (const prog::Call& call : program.calls()) {
    if (!call.desc->blocks) continue;
    if (std::find(denylist_.begin(), denylist_.end(), call.desc->name) !=
        denylist_.end())
      continue;
    TORPEDO_LOG(LogLevel::kInfo, "denylisting blocking syscall %s",
                call.desc->name.c_str());
    denylist_.push_back(call.desc->name);
    ctr_denylist_adds_->inc();
    changed = true;
  }
  if (!changed) return;
  gauge_denylist_size_->set(static_cast<double>(denylist_.size()));
  generator_.set_denylist(denylist_);
  refilter_queue();
}

void TorpedoFuzzer::adopt_denylist(std::span<const std::string> entries) {
  bool changed = false;
  for (const std::string& name : entries) {
    if (std::find(denylist_.begin(), denylist_.end(), name) !=
        denylist_.end())
      continue;
    denylist_.push_back(name);
    changed = true;
  }
  if (!changed) return;
  gauge_denylist_size_->set(static_cast<double>(denylist_.size()));
  generator_.set_denylist(denylist_);
  refilter_queue();
}

void TorpedoFuzzer::refilter_queue() {
  // A denylist grown mid-campaign must also apply to programs already queued
  // (add_seed only filters on ingestion): without this, denylisted blocking
  // calls keep re-entering batches from the queue until it drains.
  std::erase_if(queue_, [&](prog::Program& program) {
    program.filter_calls(denylist_);
    return program.empty();
  });
}

std::vector<prog::Program> TorpedoFuzzer::next_batch() {
  feedback::MutationEfficacy* eff = feedback::mutation_efficacy();
  const std::size_t n = observer_.executor_count();
  std::vector<prog::Program> batch;
  slot_lineage_.clear();
  while (batch.size() < n && !queue_.empty()) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    slot_lineage_.push_back({0, feedback::OriginOp::kSeed, -1, -1});
    if (eff) eff->record_attempt(feedback::OriginOp::kSeed);
  }
  while (batch.size() < n) {
    batch.push_back(generator_.generate());
    slot_lineage_.push_back({0, feedback::OriginOp::kGenerate, -1, -1});
    if (eff) eff->record_attempt(feedback::OriginOp::kGenerate);
  }
  return batch;
}

BatchResult TorpedoFuzzer::run_batch() {
  ctr_batches_->inc();
  feedback::MutationEfficacy* eff = feedback::mutation_efficacy();
  BatchResult result;
  std::vector<prog::Program> current = next_batch();
  const std::size_t n = current.size();

  // `stage` labels the fuzzing-loop phase this round serves; the round span
  // itself is opened by the observer, so the stage span wraps it.
  // `lineage[i]` describes programs[i]; it is published via round_lineage()
  // before the round runs (the campaign's on_round scan reads it) and
  // charges each slot's executions to its origin operator after.
  auto run = [&](const std::vector<prog::Program>& programs,
                 std::string_view stage,
                 const std::vector<feedback::Lineage>& lineage)
      -> const observer::RoundResult& {
    telemetry::ScopedSpan span(stage);
    round_lineage_ = lineage;
    const observer::RoundResult& rr = observer_.run_round(programs);
    result.rounds++;
    result.round_numbers.push_back(rr.round);
    result.saw_crash = result.saw_crash || rr.any_crash;
    for (std::size_t i = 0; i < rr.stats.size(); ++i) {
      total_executions_ += rr.stats[i].executions;
      if (eff && i < lineage.size())
        eff->record_executions(lineage[i].op, rr.stats[i].executions);
    }
    return rr;
  };

  // --- candidate stage: one run, gate on new coverage ------------------------
  const observer::RoundResult& cand = run(current, "fuzz.candidate",
                                          slot_lineage_);
  std::vector<feedback::SignalSet> cand_signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    cand_signal[i] = cand.stats[i].signal;
    learn_denylist(current[i], cand.stats[i]);
  }

  // --- triage stage: rerun to verify the coverage reproduces -----------------
  if (config_.verify_triage) {
    const observer::RoundResult& tri = run(current, "fuzz.triage",
                                           slot_lineage_);
    for (std::size_t i = 0; i < n; ++i) {
      // Keep only signal seen in both runs (syzkaller's flaky-coverage
      // filter).
      feedback::SignalSet stable;
      for (std::uint64_t e : cand_signal[i].elements())
        if (tri.stats[i].signal.contains(e)) stable.add(e);
      cand_signal[i] = std::move(stable);
    }
  }

  // Per-syscall attribution: credit each call index with the novel signal
  // its (triage-stable) per-call signal would contribute to the corpus. This
  // is the out-of-band-signal column of the syscall profile.
  if (feedback::SyscallProfile* profile = feedback::syscall_profile()) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<feedback::SmallSignalSet>& per_call =
          cand.stats[i].call_signal;
      const std::vector<prog::Call>& calls = current[i].calls();
      for (std::size_t j = 0; j < per_call.size() && j < calls.size(); ++j) {
        const std::size_t novel = corpus_.novelty(per_call[j]);
        if (novel > 0)
          profile->record_novel_signal(calls[j].desc->nr,
                                       static_cast<std::uint64_t>(novel));
      }
    }
  }

  // Replace programs contributing no new coverage with fresh generations
  // ("uninteresting candidate programs are ... removed from the work queue
  // before they are fuzzed").
  for (std::size_t i = 0; config_.use_coverage && i < n; ++i) {
    const std::size_t novelty = corpus_.novelty(cand_signal[i]);
    if (novelty == 0 && !corpus_.empty()) {
      ctr_candidates_recycled_->inc();
      const bool from_queue = !queue_.empty();
      current[i] = from_queue ? std::move(queue_.front())
                              : generator_.generate();
      if (from_queue) queue_.pop_front();
      slot_lineage_[i] = {0,
                          from_queue ? feedback::OriginOp::kSeed
                                     : feedback::OriginOp::kGenerate,
                          -1, -1};
      if (eff) eff->record_attempt(slot_lineage_[i].op);
    } else if (novelty > 0) {
      ctr_novelty_hits_->inc();
    }
  }

  // --- batch loop: mutate <-> confirm(shuffle) -------------------------------
  const observer::RoundResult& base = run(current, "fuzz.baseline",
                                          slot_lineage_);
  // The most recent round whose executor order matches `current` — the only
  // kind of round whose per-slot stats may retire the batch. A
  // shuffle-confirm round rotates programs across executors, so its
  // stats[i] belongs to a *different* program than current[i].
  const observer::RoundResult* aligned = &base;
  double best = oracle_.score(base.observation);
  result.baseline_score = best;
  std::vector<double> best_program_scores(n, best);

  int no_improvement = 0;
  while (no_improvement < config_.cycle_out_rounds) {
    if (abort_flag_ != nullptr &&
        abort_flag_->load(std::memory_order_relaxed)) {
      TORPEDO_LOG(LogLevel::kWarn,
                  "batch aborted at a round boundary (watchdog stall) after "
                  "%d rounds",
                  result.rounds);
      result.aborted = true;
      break;
    }
    // Mutate every program in the batch, capturing each slot's burst: the
    // operations applied become efficacy attempts, and the burst's last
    // operation plus splice donor (if any) become the slot's new lineage
    // should the mutation be accepted.
    std::vector<prog::Program> mutated = current;
    std::vector<feedback::Lineage> mut_lineage = slot_lineage_;
    std::vector<std::vector<prog::MutationOp>> bursts(n);
    for (std::size_t i = 0; i < n; ++i) {
      mutator_.mutate(mutated[i], corpus_.donors());
      bursts[i].assign(mutator_.last_ops().begin(),
                       mutator_.last_ops().end());
      if (!bursts[i].empty())
        mut_lineage[i].op = origin_of(bursts[i].back());
      const std::uint64_t donor = mutator_.last_splice_donor_hash();
      if (donor != 0) mut_lineage[i].parent_hash = donor;
      if (eff)
        for (prog::MutationOp op : bursts[i])
          eff->record_attempt(origin_of(op));
    }
    ctr_mutations_tried_->inc(n);

    auto accept_burst_ops = [&] {
      if (!eff) return;
      for (const std::vector<prog::MutationOp>& burst : bursts)
        for (prog::MutationOp op : burst) eff->record_accept(origin_of(op));
    };

    const observer::RoundResult& mut = run(mutated, "fuzz.mutate",
                                           mut_lineage);
    const double score = oracle_.score(mut.observation);
    for (std::size_t i = 0; i < n; ++i)
      learn_denylist(mutated[i], mut.stats[i]);

    if (!config_.use_resource_score) {
      // Resource-blind ablation: accept every mutation unconditionally.
      current = std::move(mutated);
      slot_lineage_ = mut_lineage;
      aligned = &mut;
      ctr_mutations_accepted_->inc(n);
      accept_burst_ops();
      ++no_improvement;
      continue;
    }

    const bool improved =
        score >= best + config_.significance_points && !equivalent(score, best);
    if (!improved) {
      ++no_improvement;
      continue;
    }

    if (!config_.confirm_shuffle) {
      // Shuffle-confirm disabled (ablation): trust the raw score.
      current = std::move(mutated);
      slot_lineage_ = mut_lineage;
      aligned = &mut;
      ctr_mutations_accepted_->inc(n);
      accept_burst_ops();
      best = score;
      result.improvements++;
      no_improvement = 0;
      continue;
    }

    // Confirm as "shuffle": same programs, rotated across executors (and
    // therefore cores) so a noise spike pinned to one core can't fake an
    // improvement (§3.5.2).
    std::vector<prog::Program> shuffled(mutated.size());
    std::vector<feedback::Lineage> shuffled_lineage(mutated.size());
    for (std::size_t i = 0; i < mutated.size(); ++i) {
      shuffled[(i + 1) % mutated.size()] = mutated[i];
      shuffled_lineage[(i + 1) % mutated.size()] = mut_lineage[i];
    }
    const observer::RoundResult& confirm = run(shuffled, "fuzz.confirm",
                                               shuffled_lineage);
    const double confirm_score = oracle_.score(confirm.observation);

    if (confirm_score >= best + config_.significance_points ||
        equivalent(confirm_score, score)) {
      current = std::move(mutated);
      slot_lineage_ = mut_lineage;
      // The confirm round ran rotated; the mutate round is the aligned one.
      aligned = &mut;
      ctr_mutations_accepted_->inc(n);
      accept_burst_ops();
      best = std::max(score, confirm_score);
      result.improvements++;
      no_improvement = 0;
    } else {
      result.rejected_confirms++;
      ctr_confirm_rejections_->inc();
      ++no_improvement;
    }
  }

  // --- retire the batch into the corpus --------------------------------------
  // Use the last `current`-aligned round, NOT observer log().back(): when the
  // batch ends on a shuffle-confirm round, the log tail's stats are rotated
  // (and possibly belong to rejected mutants), so each program would enter
  // the corpus with another program's coverage signal.
  for (std::size_t i = 0; i < n && i < aligned->stats.size(); ++i) {
    feedback::Lineage lineage = slot_lineage_[i];
    lineage.birth_round = aligned->round;
    // Novelty must be read before add() merges the signal into coverage.
    const std::size_t novel = corpus_.novelty(aligned->stats[i].signal);
    const bool inserted =
        corpus_.add(current[i], aligned->stats[i].signal, best, lineage);
    if (eff) {
      if (novel > 0)
        eff->record_novel_signal(lineage.op,
                                 static_cast<std::uint64_t>(novel));
      if (inserted) eff->record_corpus_insert(lineage.op);
    }
  }
  result.corpus_signal_round = aligned->round;

  result.best_score = best;
  result.final_programs = std::move(current);
  return result;
}

}  // namespace torpedo::core
