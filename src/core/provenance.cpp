#include "core/provenance.h"

#include <fstream>

#include "core/campaign.h"
#include "util/strings.h"

namespace torpedo::core {

namespace fs = std::filesystem;

namespace {

std::string core_usage_to_json(const observer::CoreUsage& usage) {
  telemetry::JsonDict d;
  d.set("core", usage.core);
  telemetry::JsonDict jiffies;
  for (int i = 0; i < sim::kNumCpuCategories; ++i) {
    const auto cat = static_cast<sim::CpuCategory>(i);
    jiffies.set(sim::cpu_category_name(cat),
                usage.jiffies[static_cast<std::size_t>(i)]);
  }
  d.set_raw("jiffies", jiffies.to_string())
      .set("busy_percent", usage.percent())
      .set("iowait_fraction", usage.iowait_fraction());
  return d.to_string();
}

std::string int_array_to_json(const std::vector<int>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

std::string minimize_history_to_json(const std::vector<MinimizeStep>& steps) {
  std::string out = "[";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i) out += ",";
    telemetry::JsonDict d;
    d.set("call_index", steps[i].call_index)
        .set("call", steps[i].call_name)
        .set("kept_removal", steps[i].kept_removal)
        .set("size_after", static_cast<std::uint64_t>(steps[i].size_after));
    out += d.to_string();
  }
  out += "]";
  return out;
}

std::string lineage_to_json(const std::vector<LineageLink>& links) {
  std::string out = "[";
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (i) out += ",";
    telemetry::JsonDict d;
    d.set("hash", format("%016llx",
                         static_cast<unsigned long long>(links[i].hash)))
        .set("parent",
             format("%016llx",
                    static_cast<unsigned long long>(links[i].parent_hash)))
        .set("op", links[i].op)
        .set("round", links[i].round);
    if (links[i].shard >= 0) d.set("shard", links[i].shard);
    out += d.to_string();
  }
  out += "]";
  return out;
}

}  // namespace

telemetry::JsonDict observation_to_json(const observer::Observation& obs) {
  telemetry::JsonDict d;
  d.set("round", obs.round)
      .set("window_start_ns", obs.window_start)
      .set("window_end_ns", obs.window_end)
      .set_raw("aggregate", core_usage_to_json(obs.aggregate));

  std::string cores = "[";
  for (std::size_t i = 0; i < obs.cores.size(); ++i) {
    if (i) cores += ",";
    cores += core_usage_to_json(obs.cores[i]);
  }
  cores += "]";
  d.set_raw("cores", cores);

  std::string processes = "[";
  for (std::size_t i = 0; i < obs.processes.size(); ++i) {
    if (i) processes += ",";
    const observer::ProcSample& p = obs.processes[i];
    telemetry::JsonDict proc;
    proc.set("pid", p.pid)
        .set("name", p.name)
        .set("cgroup", p.cgroup)
        .set("cpu_percent", p.cpu_percent);
    processes += proc.to_string();
  }
  processes += "]";
  d.set_raw("processes", processes);

  std::string containers = "[";
  for (std::size_t i = 0; i < obs.containers.size(); ++i) {
    if (i) containers += ",";
    const observer::ContainerUsage& c = obs.containers[i];
    telemetry::JsonDict ctr;
    ctr.set("cgroup", c.cgroup_path)
        .set("cpu_ns", c.cpu_ns)
        .set("memory_bytes", c.memory_bytes)
        .set("memory_failcnt", c.memory_failcnt)
        .set("blkio_bytes", c.blkio_bytes);
    containers += ctr.to_string();
  }
  containers += "]";
  d.set_raw("containers", containers);

  d.set_raw("fuzz_cores", int_array_to_json(obs.fuzz_cores))
      .set("side_band_core", obs.side_band_core)
      .set("configured_cpu_cap", obs.configured_cpu_cap)
      .set("device_bytes", obs.device_bytes)
      .set("total_utilization", obs.total_utilization());
  return d;
}

std::string trace_events_to_json(
    const std::vector<kernel::TraceEvent>& events) {
  std::string out = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i) out += ",";
    telemetry::JsonDict d;
    d.set("time_ns", events[i].time)
        .set("kind", kernel::trace_kind_name(events[i].kind))
        .set("pid", events[i].pid)
        .set("detail", events[i].detail);
    out += d.to_string();
  }
  out += "]";
  return out;
}

telemetry::JsonDict provenance_to_json(const Provenance& p, int bundle_id) {
  // Flat summary fields first (torpedo report keys on these without touching
  // the nested evidence), evidence after.
  std::string heuristics;
  for (const oracle::Violation& v : p.final_violations) {
    if (heuristics.find(v.heuristic) != std::string::npos) continue;
    if (!heuristics.empty()) heuristics += ",";
    heuristics += v.heuristic;
  }

  telemetry::JsonDict d;
  // Hash as hex text: a full uint64 does not round-trip through the parser's
  // int64/double paths, and `torpedo report` dedups on this field verbatim.
  d.set("bundle", bundle_id)
      .set("program_hash", format("%016llx",
                                  static_cast<unsigned long long>(
                                      p.program_hash)))
      .set("syscalls", p.syscalls)
      .set("heuristics", heuristics)
      .set("cause", p.cause)
      .set("symptoms", p.symptoms)
      .set("source_round", p.source_round);
  // The shard dimension exists only in sharded campaigns; unsharded bundles
  // stay byte-identical to what they always were.
  if (p.shard >= 0) d.set("shard", p.shard);
  d.set("confirm_rounds", p.confirm_rounds)
      .set("oracle_score", p.oracle_score)
      .set("program", p.minimized_serialized)
      .set("original_program", p.original_serialized)
      .set_raw("violations", oracle::violations_to_json(p.final_violations))
      .set_raw("initial_violations",
               oracle::violations_to_json(p.initial_violations))
      .set_raw("observation", observation_to_json(p.observation).to_string())
      .set_raw("kernel_trace", trace_events_to_json(p.trace_events))
      .set_raw("minimize_history",
               minimize_history_to_json(p.minimize_history))
      .set_raw("lineage", lineage_to_json(p.lineage));
  return d;
}

std::string provenance_report_md(const Provenance& p, int bundle_id) {
  std::string md;
  md += format("# Violation bundle %03d\n\n", bundle_id);
  md += format("- **syscalls:** %s\n", p.syscalls.c_str());
  md += format("- **cause:** %s\n", p.cause.c_str());
  md += format("- **symptoms:** %s\n", p.symptoms.c_str());
  md += format("- **source round:** %d\n", p.source_round);
  if (p.shard >= 0) md += format("- **shard:** %d\n", p.shard);
  md += format("- **confirm rounds spent:** %d\n", p.confirm_rounds);
  md += format("- **oracle score (final window):** %.2f\n", p.oracle_score);
  md += format("- **program hash:** %016llx\n\n",
               static_cast<unsigned long long>(p.program_hash));

  md += "## Violations (confirmed on the minimized program)\n\n";
  md += "| heuristic | subject | value | threshold |\n";
  md += "|---|---|---|---|\n";
  for (const oracle::Violation& v : p.final_violations)
    md += format("| %s | %s | %.4f | %.4f |\n", v.heuristic.c_str(),
                 v.subject.c_str(), v.value, v.threshold);

  md += "\n## Minimized program\n\n```\n" + p.minimized_serialized + "```\n";

  md += "\n## Per-core usage over the confirmation window\n\n";
  md += "| core | busy % | iowait | total jiffies |\n|---|---|---|---|\n";
  for (const observer::CoreUsage& core : p.observation.cores)
    md += format("| cpu%d | %.1f | %.3f | %lld |\n", core.core,
                 core.percent(), core.iowait_fraction(),
                 static_cast<long long>(core.total()));

  if (!p.observation.processes.empty()) {
    md += "\n## top(1) rows (window survivors)\n\n";
    md += "| pid | name | cgroup | cpu % |\n|---|---|---|---|\n";
    for (const observer::ProcSample& proc : p.observation.processes)
      md += format("| %llu | %s | %s | %.2f |\n",
                   static_cast<unsigned long long>(proc.pid),
                   proc.name.c_str(), proc.cgroup.c_str(), proc.cpu_percent);
  }

  md += format("\n## Kernel trace window (%zu events)\n\n",
               p.trace_events.size());
  if (!p.trace_events.empty()) {
    md += "| time (ns) | kind | pid | detail |\n|---|---|---|---|\n";
    for (const kernel::TraceEvent& e : p.trace_events)
      md += format("| %lld | %s | %llu | %s |\n",
                   static_cast<long long>(e.time),
                   std::string(kernel::trace_kind_name(e.kind)).c_str(),
                   static_cast<unsigned long long>(e.pid), e.detail.c_str());
  }

  if (!p.lineage.empty()) {
    md += "\n## Ancestry (suspect first, oldest splice donor last)\n\n";
    md += "| hash | op | round | shard | parent |\n|---|---|---|---|---|\n";
    for (const LineageLink& link : p.lineage)
      md += format("| %016llx | %s | %d | %s | %s |\n",
                   static_cast<unsigned long long>(link.hash),
                   link.op.c_str(), link.round,
                   link.shard >= 0 ? std::to_string(link.shard).c_str() : "-",
                   link.parent_hash != 0
                       ? format("%016llx", static_cast<unsigned long long>(
                                               link.parent_hash))
                             .c_str()
                       : "root");
  }

  if (!p.minimize_history.empty()) {
    md += "\n## Minimization history\n\n";
    md += "| removed call | kept? | size after |\n|---|---|---|\n";
    for (const MinimizeStep& step : p.minimize_history)
      md += format("| %s (index %d) | %s | %zu |\n", step.call_name.c_str(),
                   step.call_index, step.kept_removal ? "yes" : "no",
                   step.size_after);
  }

  md += "\nReproduce with `torpedo exec program.prog`.\n";
  return md;
}

std::size_t write_violation_bundles(const fs::path& workdir,
                                    const CampaignReport& report) {
  std::size_t written = 0;
  for (std::size_t i = 0; i < report.provenance.size(); ++i) {
    const Provenance& p = report.provenance[i];
    const int bundle_id = static_cast<int>(i);
    const fs::path dir = workdir / "violations" / format("%03d", bundle_id);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) continue;

    {
      std::ofstream out(dir / "bundle.json");
      if (!out) continue;
      out << provenance_to_json(p, bundle_id).to_string() << "\n";
    }
    {
      std::ofstream out(dir / "report.md");
      out << provenance_report_md(p, bundle_id);
    }
    {
      std::ofstream out(dir / "program.prog");
      out << p.minimized_serialized;
    }
    {
      std::ofstream out(dir / "original.prog");
      out << p.original_serialized;
    }
    ++written;
  }
  return written;
}

}  // namespace torpedo::core
