// The TORPEDO fuzzing loop: syzkaller's program lifecycle split into two
// state machines (Figure 3.3).
//
// Program-level: candidate -> triage -> batch member -> corpus / discarded.
// Batch-level:   mutate <-> shuffle(confirm) -> exhausted.
//
// Code coverage gates individual programs (a candidate that contributes no
// new fallback-coverage signal is rejected before it wastes mutation
// rounds); the oracle score steers the batch (§3.5: "Code coverage is
// incorporated at the individual program level, and resource utilization at
// the 'set of programs' level").
#pragma once

#include <atomic>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "feedback/corpus.h"
#include "observer/observer.h"
#include "oracle/oracle.h"
#include "prog/generate.h"
#include "prog/mutate.h"

namespace torpedo::telemetry {
class Counter;
class Gauge;
}  // namespace torpedo::telemetry

namespace torpedo::core {

struct FuzzerConfig {
  // Score handling (§4.2): utilizations within the band are equivalent;
  // improvements must exceed the significance to matter.
  double equivalence_band_pct = 2.5;  // relative, percent of baseline
  double significance_points = 1.0;   // absolute percentage points
  int cycle_out_rounds = 15;          // rounds without improvement

  // Candidate triage: rerun to verify new coverage before accepting.
  bool verify_triage = true;
  // Gate batch membership on new coverage at all (ablation: coverage-blind).
  bool use_coverage = true;
  // Confirm improvements with a shuffled re-run (ablation: §3.5.2's
  // noise-rejection mechanism).
  bool confirm_shuffle = true;
  // Use the oracle score to accept mutations at all (ablation:
  // resource-blind — mutations accumulate unconditionally).
  bool use_resource_score = true;

  // Auto-denylist: a program stuck blocking (near-zero executions) gets its
  // blocking syscalls denylisted, as the paper did by hand for pause/
  // nanosleep/poll/recv (§4.1.2).
  bool auto_denylist = true;
  std::uint64_t blocked_execution_threshold = 3;
};

// What happened to one batch.
struct BatchResult {
  int rounds = 0;
  double baseline_score = 0;
  double best_score = 0;
  int improvements = 0;        // confirmed score steps
  int rejected_confirms = 0;   // mutations that failed the shuffle confirm
  std::vector<prog::Program> final_programs;
  std::vector<int> round_numbers;  // observer round indices this batch used
  // Observer round whose per-executor stats retired the batch into the
  // corpus. Its executor order matches final_programs — unlike e.g. a
  // trailing shuffle-confirm round, whose slots are rotated.
  int corpus_signal_round = -1;
  bool saw_crash = false;
  // The batch was retired early because the abort flag (watchdog stall) was
  // raised; final_programs still entered the corpus normally.
  bool aborted = false;
};

class TorpedoFuzzer {
 public:
  TorpedoFuzzer(observer::Observer& observer, oracle::Oracle& oracle,
                prog::Generator& generator, prog::Mutator& mutator,
                feedback::Corpus& corpus, FuzzerConfig config = {});

  // Seed ingestion workflow (§1.2 item 4).
  void add_seed(prog::Program program);
  std::size_t pending() const { return queue_.size(); }

  // Drives one batch of n programs (n == executor count) through candidate
  // evaluation, triage, and the mutate/confirm loop to exhaustion.
  BatchResult run_batch();

  // Lineage of the programs in the most recent observer round, indexed by
  // executor slot (rotated for shuffle-confirm rounds, so stats[i] and
  // round_lineage()[i] always describe the same program). The campaign's
  // flag scan uses this to attribute violations to mutation operators and
  // to capture a suspect's ancestry.
  std::span<const feedback::Lineage> round_lineage() const {
    return round_lineage_;
  }

  const std::vector<std::string>& denylist() const { return denylist_; }
  // Merges denylist entries learned elsewhere (another shard, via the
  // CorpusHub) and pushes the combined list into the generator.
  void adopt_denylist(std::span<const std::string> entries);
  std::uint64_t total_executions() const { return total_executions_; }

  // When set, the batch loop checks the flag at round boundaries and retires
  // the batch cleanly once it is raised (the watchdog's stall-abort path).
  // Caller keeps ownership; nullptr disables.
  void set_abort_flag(const std::atomic<bool>* flag) { abort_flag_ = flag; }

 private:
  std::vector<prog::Program> next_batch();
  // True if the two scores are within the equivalence band.
  bool equivalent(double a, double b) const;
  void learn_denylist(const prog::Program& program,
                      const exec::RunStats& stats);
  // Applies the current denylist to every queued program, dropping programs
  // that become empty. Runs on every denylist change.
  void refilter_queue();

  observer::Observer& observer_;
  oracle::Oracle& oracle_;
  prog::Generator& generator_;
  prog::Mutator& mutator_;
  feedback::Corpus& corpus_;
  FuzzerConfig config_;

  std::deque<prog::Program> queue_;
  // Lineage of current[i] in the running batch / of the last round's slots.
  std::vector<feedback::Lineage> slot_lineage_;
  std::vector<feedback::Lineage> round_lineage_;
  std::vector<std::string> denylist_;
  std::uint64_t total_executions_ = 0;
  const std::atomic<bool>* abort_flag_ = nullptr;

  telemetry::Counter* ctr_batches_ = nullptr;
  telemetry::Counter* ctr_mutations_tried_ = nullptr;
  telemetry::Counter* ctr_mutations_accepted_ = nullptr;
  telemetry::Counter* ctr_confirm_rejections_ = nullptr;
  telemetry::Counter* ctr_novelty_hits_ = nullptr;
  telemetry::Counter* ctr_candidates_recycled_ = nullptr;
  telemetry::Counter* ctr_denylist_adds_ = nullptr;
  telemetry::Gauge* gauge_denylist_size_ = nullptr;
};

}  // namespace torpedo::core
