#include "core/sharded.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"
#include "util/rng.h"

namespace torpedo::core {

ShardedCampaign::ShardedCampaign(ShardedConfig config)
    : config_(std::move(config)) {
  TORPEDO_CHECK(config_.shards > 0);
  hub_ = std::make_unique<feedback::CorpusHub>(config_.shards);
}

ShardedCampaign::~ShardedCampaign() = default;

std::uint64_t ShardedCampaign::shard_seed(std::uint64_t base, int shard) {
  return mix_seed(base, static_cast<std::uint64_t>(shard));
}

void ShardedCampaign::run_shard(int shard, ShardResult& result) {
  try {
    CampaignConfig cfg = config_.base;
    cfg.seed = shard_seed(config_.base.seed, shard);
    Campaign campaign(cfg);
    // Entries born here carry this shard's index; entries pulled from a peer
    // keep the birth_shard they arrived with.
    campaign.corpus().set_shard(shard);
    if (start_hook_) start_hook_(shard, campaign);
    if (seeds_.has_value())
      campaign.load_seeds(*seeds_);
    else
      campaign.load_default_seeds();

    const bool sync = config_.corpus_sync && config_.shards > 1;
    // Corpus entries below this index have already been through the hub
    // (published by us, or pulled from a peer) — never re-publish them.
    std::size_t published = 0;
    for (int b = 0; b < cfg.batches; ++b) {
      const BatchResult batch = campaign.run_one_batch();
      TORPEDO_LOG(LogLevel::kInfo,
                  "shard %d batch %d: rounds=%d best=%.1f corpus=%zu", shard,
                  b, batch.rounds, batch.best_score, campaign.corpus().size());
      if (!sync) continue;
      std::vector<feedback::CorpusEntry> fresh;
      for (; published < campaign.corpus().size(); ++published)
        fresh.push_back(campaign.corpus().entry(published));
      feedback::CorpusHub::Delta delta = hub_->exchange(
          shard, std::move(fresh), campaign.fuzzer().denylist());
      for (feedback::CorpusEntry& e : delta.entries)
        campaign.corpus().add(std::move(e.program), e.signal, e.best_score,
                              e.lineage);
      published = campaign.corpus().size();
      campaign.fuzzer().adopt_denylist(delta.denylist);
    }

    result.report = campaign.finalize();
    result.corpus.reserve(campaign.corpus().size());
    for (std::size_t i = 0; i < campaign.corpus().size(); ++i)
      result.corpus.push_back(campaign.corpus().entry(i));
    if (finish_hook_) finish_hook_(shard, campaign);
  } catch (const std::exception& e) {
    result.error = e.what();
    TORPEDO_LOG(LogLevel::kError, "shard %d died: %s", shard, e.what());
  }
  // Always leave, success or death: the hub barrier must shrink so the
  // remaining shards never wait on a ghost.
  hub_->leave(shard);
}

CampaignReport ShardedCampaign::merge(std::vector<ShardResult>& results) {
  // (finding, provenance) travel as a pair so the post-sort index remap
  // cannot tear them apart.
  struct Item {
    Finding finding;
    Provenance provenance;
  };
  std::vector<Item> items;
  CampaignReport merged;

  for (int s = 0; s < config_.shards; ++s) {
    CampaignReport& r = results[static_cast<std::size_t>(s)].report;
    merged.batches += r.batches;
    merged.rounds += r.rounds;
    merged.executions += r.executions;
    merged.suspects += r.suspects;
    merged.crash_suspects += r.crash_suspects;
    merged.confirmations_run += r.confirmations_run;

    for (std::size_t i = 0; i < r.findings.size(); ++i) {
      Item item;
      item.finding = std::move(r.findings[i]);
      item.finding.shard = s;
      // Per-shard finalize emits exactly one provenance per finding, in
      // finding order; pair defensively by finding_index anyway.
      for (Provenance& p : r.provenance) {
        if (p.finding_index == static_cast<int>(i)) {
          item.provenance = std::move(p);
          break;
        }
      }
      item.provenance.shard = s;
      items.push_back(std::move(item));
    }

    for (CrashFinding& crash : r.crashes) {
      crash.shard = s;
      // The paper reports distinct bugs; a crash two shards both hit is one
      // bug. Shard-order iteration makes the keeper deterministic.
      const bool duplicate =
          std::any_of(merged.crashes.begin(), merged.crashes.end(),
                      [&](const CrashFinding& c) {
                        return c.message == crash.message;
                      });
      if (!duplicate) merged.crashes.push_back(std::move(crash));
    }

    for (const std::string& name : r.denylist) {
      auto it = std::lower_bound(merged.denylist.begin(),
                                 merged.denylist.end(), name);
      if (it == merged.denylist.end() || *it != name)
        merged.denylist.insert(it, name);
    }

    for (feedback::CorpusEntry& e :
         results[static_cast<std::size_t>(s)].corpus)
      merged_corpus_.add(std::move(e.program), e.signal, e.best_score,
                         e.lineage);
  }

  // Deterministic merged order: (shard, source_round), stable so a shard's
  // own tie order (the severity-interleaved confirmation order) survives.
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     if (a.finding.shard != b.finding.shard)
                       return a.finding.shard < b.finding.shard;
                     return a.finding.source_round < b.finding.source_round;
                   });
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].provenance.finding_index = static_cast<int>(i);
    merged.findings.push_back(std::move(items[i].finding));
    merged.provenance.push_back(std::move(items[i].provenance));
  }

  merged.corpus_size = merged_corpus_.size();
  return merged;
}

CampaignReport ShardedCampaign::run() {
  std::vector<ShardResult> results(
      static_cast<std::size_t>(config_.shards));
  {
    std::vector<std::jthread> workers;
    workers.reserve(static_cast<std::size_t>(config_.shards));
    for (int s = 0; s < config_.shards; ++s)
      workers.emplace_back(
          [this, s, &results] { run_shard(s, results[static_cast<std::size_t>(s)]); });
  }  // jthreads join here

  std::string errors;
  for (int s = 0; s < config_.shards; ++s) {
    const std::string& err = results[static_cast<std::size_t>(s)].error;
    if (err.empty()) continue;
    if (!errors.empty()) errors += "; ";
    errors += "shard " + std::to_string(s) + ": " + err;
  }
  if (!errors.empty())
    throw std::runtime_error("sharded campaign failed: " + errors);

  shard_reports_.clear();
  for (const ShardResult& r : results) shard_reports_.push_back(r.report);
  CampaignReport merged = merge(results);

  const feedback::CorpusHub::Stats hub_stats = hub_->stats();
  telemetry::Registry& metrics = telemetry::global();
  metrics.counter("hub.epochs").inc(hub_stats.epochs);
  metrics.counter("hub.published").inc(hub_stats.published);
  metrics.counter("hub.unique").inc(hub_stats.unique);
  metrics.counter("hub.merged").inc(hub_stats.merged);
  metrics.counter("hub.pulled").inc(hub_stats.pulled);
  metrics.gauge("campaign.shards").set(static_cast<double>(config_.shards));
  return merged;
}

}  // namespace torpedo::core
