#include "core/seeds.h"

#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace torpedo::core {

namespace {

using prog::ArgValue;
using prog::Call;
using prog::Program;
using prog::SyscallTable;

Call call(const char* name, std::vector<ArgValue> args) {
  const prog::SyscallDesc* desc = SyscallTable::instance().by_name(name);
  TORPEDO_CHECK_MSG(desc != nullptr, std::string("unknown syscall: ") + name);
  TORPEDO_CHECK_MSG(args.size() == desc->args.size(),
                    std::string("arg count mismatch for ") + name);
  Call c;
  c.desc = desc;
  c.args = std::move(args);
  return c;
}

ArgValue lit(std::uint64_t v) { return ArgValue::lit(v); }
ArgValue str(const char* s) { return ArgValue::text(s); }
ArgValue ref(int i) { return ArgValue::result(i); }

Program finish(std::vector<Call> calls) {
  Program p(std::move(calls));
  p.fixup();
  TORPEDO_CHECK(p.valid());
  return p;
}

// The standard mmap prologue syzkaller programs carry.
Call mmap_prologue() {
  return call("mmap", {lit(0x7f0000000000), lit(0x1000), lit(0x3), lit(0x32),
                       lit(0xffffffffffffffff), lit(0)});
}

const char* kEloopPath =
    "test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/"
    "test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/"
    "test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/"
    "test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/"
    "test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/"
    "test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/"
    "test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/"
    "test_eloop";

}  // namespace

std::optional<prog::Program> named_seed(const std::string& name) {
  // --- Appendix A.1.1: baseline programs under runC -------------------------
  if (name == "appendix-a1-prog0") {
    return finish({
        mmap_prologue(),
        call("creat", {str("mntpoint/tmp"), lit(0x124)}),
    });
  }
  if (name == "appendix-a1-prog1") {
    return finish({
        call("inotify_init", {}),                              // r0
        call("ioctl", {ref(0), lit(0x80087601), str("")}),     // FS_IOC_GETVERSION
        call("alarm", {lit(0x4)}),
        call("open", {str("/proc/sys/fs/mqueue/msg_max"), lit(0x2), lit(0)}),
        call("lseek", {ref(3), lit(0xfffffffffffffffb), lit(0x1)}),
        call("lseek", {ref(3), lit(0), lit(0)}),
        call("read", {ref(3), str(""), lit(0x7)}),
        call("write", {ref(3), str("47530"), lit(0x6)}),
        call("ioctl", {ref(3), lit(0xc02064a5), str("")}),     // DRM_..SETGAMMA
    });
  }
  if (name == "appendix-a1-prog2") {
    return finish({
        mmap_prologue(),
        call("getrlimit", {lit(0x3e8), str("")}),
    });
  }

  // --- Appendix A.1.2: the sync(2) adversarial batch ------------------------
  if (name == "sync") {
    return finish({call("sync", {})});
  }
  if (name == "kcmp-pair") {
    return finish({
        call("getpid", {}),
        call("kcmp", {lit(0x1586), ref(0), lit(0x9), lit(0), lit(0)}),
    });
  }
  if (name == "readlink-eloop") {
    return finish({
        mmap_prologue(),
        call("readlink", {str(kEloopPath), str(""), lit(0)}),
    });
  }

  // --- Appendix A.1.3: the OOB netlink-audit program ------------------------
  if (name == "audit-oob") {
    return finish({
        call("socket$netlink", {lit(0x10), lit(0x3), lit(0x9)}),  // r0
        call("socketpair", {lit(0x4), lit(0x3), lit(0x7), str("")}),
        call("sendto", {ref(0), str("testing audit system"), lit(0x24),
                        lit(0), str(""), lit(0xc)}),
    });
  }

  // --- Appendix A.2.1: gVisor baseline programs ------------------------------
  if (name == "gvisor-prog0") {
    return finish({
        mmap_prologue(),
        call("chmod", {str("testdir_1"), lit(0x1ff)}),
    });
  }
  if (name == "gvisor-prog1") {
    return finish({call("setuid", {lit(0xfffe)})});
  }
  if (name == "gvisor-prog2") {
    return finish({
        mmap_prologue(),
        call("creat", {str("getxattr01testfile"), lit(0x1a4)}),
        call("setxattr", {str("getxattr01testfile"),
                          str("system.posix_acl_access"),
                          str("this is a test value"), lit(0x15), lit(0x1)}),
        call("getxattr", {str("getxattr01testfile"),
                          str("system.posix_acl_access"), str(""), lit(0)}),
        call("getxattr", {str("getxattr01testfile"),
                          str("system.posix_acl_access"), str(""), lit(0)}),
        call("getxattr", {str("getxattr01testfile"),
                          str("system.posix_acl_access"), str(""), lit(0x15)}),
    });
  }

  // --- Appendix A.2.2: the crash-causing open(2) ------------------------------
  if (name == "gvisor-open-crash") {
    return finish({
        call("open", {str("/lib/x86_64-linux-gnu/libc.so.6"), lit(0x680002),
                      lit(0x20)}),
    });
  }

  // --- §4.1 known-vulnerability recreations (Gao et al.) ----------------------
  if (name == "fallocate-sigxfsz") {
    return finish({
        call("creat", {str("bigfile"), lit(0x1a4)}),  // r0
        call("fallocate", {ref(0), lit(0), lit(0), lit(0x4000000000000000)}),
    });
  }
  if (name == "ftruncate-sigxfsz") {
    return finish({
        call("creat", {str("bigfile2"), lit(0x1a4)}),
        call("ftruncate", {ref(0), lit(0x7000000000000000)}),
    });
  }
  if (name == "rt-sigreturn") {
    return finish({call("rt_sigreturn", {})});
  }
  if (name == "rseq-invalid") {
    return finish({
        call("rseq", {lit(0x7f0000000001), lit(0x20), lit(0), lit(0x53053053)}),
    });
  }
  if (name == "socket-modprobe") {
    return finish({
        call("socket", {lit(0x4), lit(0x3), lit(0x9)}),  // AF_IPX: no module
    });
  }
  if (name == "setuid-audit") {
    // Credential-change flood: every call is audited, so kauditd/journald do
    // the containerized process's work in their own cgroups.
    return finish({call("setuid", {lit(0xfffe)})});
  }
  if (name == "mmap-thrash") {
    // Memory-oracle target (§5.1): hammers the container's -m limit.
    std::vector<Call> calls;
    for (int i = 0; i < 6; ++i)
      calls.push_back(call("mmap", {lit(0x7f0000000000), lit(0x1000000),
                                    lit(0x3), lit(0x32),
                                    lit(0xffffffffffffffff), lit(0)}));
    return finish(std::move(calls));
  }
  if (name == "fsync-flood") {
    return finish({
        call("creat", {str("journal0"), lit(0x1a4)}),  // r0
        call("write", {ref(0), str("this is a test value"), lit(0x4000)}),
        call("fsync", {ref(0)}),
    });
  }

  return std::nullopt;
}

std::vector<std::string> named_seed_names() {
  return {
      "appendix-a1-prog0", "appendix-a1-prog1", "appendix-a1-prog2",
      "sync",              "kcmp-pair",         "readlink-eloop",
      "audit-oob",         "gvisor-prog0",      "gvisor-prog1",
      "gvisor-prog2",      "gvisor-open-crash", "fallocate-sigxfsz",
      "ftruncate-sigxfsz", "rt-sigreturn",      "rseq-invalid",
      "socket-modprobe",   "setuid-audit",      "fsync-flood",
      "mmap-thrash",
  };
}

namespace {

// Builds one interface-coherent random sequence (what Moonshine's distilled
// traces look like: a resource created, exercised, and released).
Program interface_seed(Rng& rng, int family) {
  std::vector<Call> calls;
  auto maybe_prologue = [&] {
    if (rng.chance(1, 2)) calls.push_back(mmap_prologue());
  };
  const int base = static_cast<int>(calls.size());
  (void)base;

  switch (family) {
    case 0: {  // regular file IO
      maybe_prologue();
      const int fd = static_cast<int>(calls.size());
      const std::string path = "seedfile_" + std::to_string(rng.below(32));
      calls.push_back(call("creat", {ArgValue::text(path), lit(0x1a4)}));
      const int ops = 1 + static_cast<int>(rng.below(4));
      for (int i = 0; i < ops; ++i) {
        switch (rng.below(5)) {
          case 0:
            calls.push_back(call("write", {ref(fd), str("this is a test value"),
                                           lit(0x1000 << rng.below(4))}));
            break;
          case 1:
            calls.push_back(call("lseek", {ref(fd), lit(rng.below(4096)),
                                           lit(rng.below(3))}));
            break;
          case 2:
            calls.push_back(call("read", {ref(fd), str(""), lit(0x1000)}));
            break;
          case 3:
            calls.push_back(call("fstat", {ref(fd), str("")}));
            break;
          default:
            calls.push_back(call("flock", {ref(fd), lit(2)}));
            break;
        }
      }
      if (rng.chance(1, 2)) calls.push_back(call("close", {ref(fd)}));
      break;
    }
    case 1: {  // path operations
      maybe_prologue();
      const std::string dir = "seeddir_" + std::to_string(rng.below(16));
      calls.push_back(call("mkdir", {ArgValue::text(dir), lit(0x1c0)}));
      calls.push_back(call("access", {ArgValue::text(dir), lit(4)}));
      calls.push_back(
          call("chmod", {ArgValue::text(dir), lit(rng.below(0x1ff))}));
      if (rng.chance(1, 3))
        calls.push_back(call("stat", {ArgValue::text(dir), str("")}));
      break;
    }
    case 2: {  // sockets
      const std::uint64_t fams[] = {1, 2, 10, 16};
      const int sock = static_cast<int>(calls.size());
      calls.push_back(call("socket", {lit(fams[rng.below(4)]),
                                      lit(1 + rng.below(3)),
                                      lit(rng.chance(1, 3) ? rng.below(20)
                                                           : 0)}));
      if (rng.chance(2, 3))
        calls.push_back(call("setsockopt", {ref(sock), lit(1), lit(2),
                                            str(""), lit(4)}));
      if (rng.chance(1, 2))
        calls.push_back(call("sendto", {ref(sock), str("payload"), lit(0x20),
                                        lit(0), str(""), lit(0x10)}));
      if (rng.chance(1, 2))
        calls.push_back(call("shutdown", {ref(sock), lit(rng.below(3))}));
      break;
    }
    case 3: {  // xattrs
      maybe_prologue();
      const std::string path = "xattrfile_" + std::to_string(rng.below(16));
      calls.push_back(call("creat", {ArgValue::text(path), lit(0x1a4)}));
      calls.push_back(call("setxattr",
                           {ArgValue::text(path), str("user.test"),
                            str("this is a test value"), lit(0x15), lit(0)}));
      calls.push_back(call("getxattr", {ArgValue::text(path), str("user.test"),
                                        str(""), lit(rng.chance(1, 2) ? 0 : 0x15)}));
      break;
    }
    case 4: {  // memory
      calls.push_back(call("mmap", {lit(0x7f0000000000),
                                    lit(0x1000 << rng.below(6)), lit(0x3),
                                    lit(0x32), lit(0xffffffffffffffff),
                                    lit(0)}));
      if (rng.chance(1, 2))
        calls.push_back(call("madvise",
                             {lit(0x7f0000000000), lit(0x1000), lit(4)}));
      if (rng.chance(1, 2))
        calls.push_back(call("munmap", {lit(0x7f0000000000), lit(0x1000)}));
      break;
    }
    case 5: {  // process info
      calls.push_back(call("getpid", {}));
      const int ops = 1 + static_cast<int>(rng.below(3));
      for (int i = 0; i < ops; ++i) {
        switch (rng.below(4)) {
          case 0:
            calls.push_back(call("getrlimit", {lit(rng.below(16)), str("")}));
            break;
          case 1:
            calls.push_back(call("umask", {lit(022)}));
            break;
          case 2:
            calls.push_back(call("sysinfo", {str("")}));
            break;
          default:
            calls.push_back(call("uname", {str("")}));
            break;
        }
      }
      break;
    }
    case 6: {  // inotify / event fds
      const int ifd = static_cast<int>(calls.size());
      calls.push_back(call("inotify_init", {}));
      calls.push_back(call("inotify_add_watch",
                           {ref(ifd), str("testdir_1"), lit(0x2)}));
      if (rng.chance(1, 2)) calls.push_back(call("epoll_create1", {lit(0)}));
      break;
    }
    default: {  // mixed file + signal probing
      maybe_prologue();
      const int fd = static_cast<int>(calls.size());
      calls.push_back(call("open", {str("/etc/passwd"), lit(0), lit(0)}));
      calls.push_back(call("read", {ref(fd), str(""), lit(0x200)}));
      if (rng.chance(1, 3)) calls.push_back(call("alarm", {lit(0x4)}));
      calls.push_back(call("close", {ref(fd)}));
      break;
    }
  }
  return finish(std::move(calls));
}

}  // namespace

std::vector<prog::Program> moonshine_seeds(std::size_t count,
                                           std::uint64_t seed) {
  std::vector<prog::Program> out;
  for (const std::string& name : named_seed_names()) {
    if (out.size() >= count) return out;
    // gVisor-specific crash seed excluded: campaigns should *discover* it.
    if (name == "gvisor-open-crash") continue;
    out.push_back(*named_seed(name));
  }
  Rng rng(seed);
  while (out.size() < count) {
    out.push_back(interface_seed(rng, static_cast<int>(out.size() % 8)));
  }
  return out;
}

}  // namespace torpedo::core
