#include "exec/executor.h"

#include "exec/snapshot.h"
#include "feedback/syscall_profile.h"
#include "telemetry/span.h"
#include "telemetry/telemetry.h"
#include "util/check.h"

namespace torpedo::exec {

struct Executor::State {
  enum class Phase { kIdle, kPrimed, kRunning, kCrashed };

  Phase phase = Phase::kIdle;
  prog::Program program;
  Nanos stop_time = 0;
  RunStats stats;
  ExecConfig config;
  runtime::Engine* engine = nullptr;
  runtime::Container* container = nullptr;
  bool setup_paid = false;
  std::uint64_t iter_in_round = 0;
  const std::atomic<bool>* abort_flag = nullptr;
  // Snapshot-exec state: the lowered image of the primed program and the
  // reusable result buffer it is patched from.
  ProgramImage image;
  std::vector<std::int64_t> results_buf;
  runtime::ExecOutcome outcome_buf;  // reused across calls; see execute()

  // Rebuilds stats.signal from the per-call sets. Every element ever added
  // lands in call_signal[i], and prime() resets stats before the program
  // (and thus call_signal's length) can change, so the union is exact.
  // Deriving it here keeps an unordered_set insert off the per-call path.
  void refresh_signal_union() {
    stats.signal = feedback::SignalSet{};
    for (const feedback::SmallSignalSet& cs : stats.call_signal)
      for (std::uint64_t e : cs.elements()) stats.signal.add(e);
  }
  Rng rng{0xE8EC};
  telemetry::Counter* ctr_executions = nullptr;
  telemetry::Counter* ctr_crashes = nullptr;
  telemetry::Counter* ctr_fatal_respawns = nullptr;

  kernel::SysReq lower(const prog::Call& call,
                       const std::vector<std::int64_t>& results) const {
    kernel::SysReq req;
    req.nr = call.desc->nr;
    for (const prog::ArgValue& value : call.args) {
      switch (value.kind) {
        case prog::ArgValue::Kind::kLiteral:
          req.args.push_back(kernel::SysArg::num(value.literal));
          break;
        case prog::ArgValue::Kind::kString:
          req.args.push_back(kernel::SysArg::text(value.str));
          break;
        case prog::ArgValue::Kind::kResult: {
          const std::int64_t r =
              value.result_of >= 0 &&
                      static_cast<std::size_t>(value.result_of) <
                          results.size()
                  ? results[static_cast<std::size_t>(value.result_of)]
                  : -1;
          req.args.push_back(
              kernel::SysArg::num(static_cast<std::uint64_t>(r)));
          break;
        }
      }
    }
    return req;
  }

  // stream_every == 0 (and bytes_per_result == 0) mean "never stream"; the
  // modulo below would otherwise divide by zero.
  bool streaming_enabled() const {
    return config.stream_every > 0 && config.bytes_per_result > 0;
  }

  void finalize_round(sim::Host& host) {
    (void)host;
    if (streaming_enabled()) {
      const std::uint64_t pending = iter_in_round % config.stream_every;
      if (pending > 0 && container)
        engine->stream_output(*container, pending * config.bytes_per_result);
    }
    phase = Phase::kIdle;
  }

  // Expands one program iteration into segments. Returns false when the
  // container runtime crashed (phase moves to kCrashed).
  bool run_one_iteration(sim::Host& host, sim::Task& task) {
    kernel::Process* proc = container->process();
    TORPEDO_CHECK_MSG(proc != nullptr, "running executor without a process");
    kernel::SimKernel& kernel = engine->kernel();
    kernel.reset_process(*proc);
    proc->block_deadline = stop_time;

    stats.executions++;
    ctr_executions->inc();
    iter_in_round++;
    const bool collide =
        config.collide_every > 0 &&
        iter_in_round % static_cast<std::uint64_t>(config.collide_every) == 0;
    const runtime::ExecContext ctx{.collider = collide};

    const Nanos now = host.now();
    Nanos iter_time = config.iteration_user;
    task.push(sim::Segment::user(config.iteration_user));

    const bool snapshot = config.snapshot_exec && image.built();
    results_buf.assign(program.size(), -1);
    std::vector<std::int64_t>& results = results_buf;
    kernel::SysReq cold_req;
    stats.call_signal.resize(program.size());
    stats.last_iteration.clear();
    feedback::SyscallProfile* profile = feedback::syscall_profile();

    for (std::size_t i = 0; i < program.size(); ++i) {
      // Snapshot restore: patch the dirty result slots of the pre-lowered
      // request. Cold boot: rebuild the request from the program IR.
      const kernel::SysReq& req =
          snapshot ? image.materialize(i, results)
                   : (cold_req = lower(program.calls()[i], results), cold_req);
      runtime::ExecOutcome& outcome = outcome_buf;
      container->runtime().execute(*proc, req, ctx, outcome);
      const kernel::SysResult& r = outcome.res;

      if (outcome.runtime_crashed) {
        ctr_crashes->inc();
        stats.crashed = true;
        stats.crash_message = outcome.crash_message;
        phase = Phase::kCrashed;
        if (r.user_ns > 0) task.push(sim::Segment::user(r.user_ns));
        // The entrypoint's crash handler flushes results buffered from the
        // iterations that *completed* before the runtime died — without
        // this, finalize_round never runs for a crashed round and the
        // pending stream bytes (and their LDISC side-band) vanish.
        if (streaming_enabled()) {
          const std::uint64_t pending =
              (iter_in_round - 1) % config.stream_every;
          if (pending > 0)
            engine->stream_output(*container,
                                  pending * config.bytes_per_result);
        }
        return false;
      }

      results[i] = r.ret;
      if (profile) profile->record_execution(req.nr);
      const std::uint64_t sig = feedback::fallback_signal(req.nr, r.err);
      stats.call_signal[i].add(sig);
      stats.last_iteration.push_back({req.nr, r.ret, r.err});

      iter_time += r.user_ns + r.sys_ns;
      if (r.user_ns > 0) task.push(sim::Segment::user(r.user_ns));
      if (r.sys_ns > 0) task.push(sim::Segment::system(r.sys_ns));
      if (r.block_until > now) {
        task.push(sim::Segment::block_until(r.block_until, r.block_io));
        // Charge the block from the call's virtual position (now +
        // iter_time): time earlier calls already spent is not re-counted,
        // keeping avg_execution_time — and the Algorithm 1 lookahead that
        // retires rounds — honest for deep programs.
        iter_time += blocking_charge(r.block_until, r.block_hint,
                                     now + iter_time);
      }

      if (r.fatal_signal != 0) {
        // The program process died; the entrypoint forks a fresh one.
        ctr_fatal_respawns->inc();
        stats.fatal_signals++;
        stats.last_fatal_signal = r.fatal_signal;
        task.push(sim::Segment::user(config.respawn_user));
        task.push(sim::Segment::system(config.respawn_sys));
        iter_time += config.respawn_user + config.respawn_sys;
        break;
      }
    }

    // Minor-fault / scheduler breath.
    if (config.iteration_block_chance > 0 &&
        rng.uniform() < config.iteration_block_chance) {
      task.push(sim::Segment::block_until(now + iter_time +
                                          config.iteration_block));
      iter_time += config.iteration_block;
    }

    stats.total_execution_time += iter_time;
    stats.avg_execution_time =
        stats.total_execution_time / static_cast<Nanos>(stats.executions);

    if (streaming_enabled() && iter_in_round % config.stream_every == 0)
      engine->stream_output(*container,
                            config.stream_every * config.bytes_per_result);
    return true;
  }
};

sim::Supplier Executor::make_supplier() {
  std::shared_ptr<State> state = state_;
  return [state](sim::Host& host, sim::Task& task) {
    State& st = *state;
    switch (st.phase) {
      case State::Phase::kIdle:
      case State::Phase::kPrimed:
      case State::Phase::kCrashed:
        // Latched: wait for the observer's release (or a restart).
        task.push(sim::Segment::block_wake());
        return true;
      case State::Phase::kRunning:
        break;
    }

    const Nanos now = host.now();
    // Watchdog abort: retire the round at this iteration boundary instead of
    // looping to stop_time (a stalled round never reaches it in wall time).
    if (st.abort_flag && st.abort_flag->load(std::memory_order_relaxed)) {
      st.finalize_round(host);
      task.push(sim::Segment::block_wake());
      return true;
    }
    // Algorithm 1: stop when the *predicted* completion of one more
    // iteration would overrun the stop timestamp.
    if (now >= st.stop_time ||
        now + st.stats.avg_execution_time > st.stop_time) {
      st.finalize_round(host);
      task.push(sim::Segment::block_wake());
      return true;
    }
    if (!st.setup_paid) {
      st.setup_paid = true;
      task.push(sim::Segment::user(st.config.ipc_setup));
      task.push(sim::Segment::system(st.config.ipc_setup / 2));
      return true;
    }
    if (!st.run_one_iteration(host, task)) {
      // Runtime crash: stay alive but dormant until the owner restarts the
      // container (killing this task from inside its own supplier is UB).
      task.push(sim::Segment::block_wake());
    }
    return true;
  };
}

Executor::Executor(runtime::Engine& engine, runtime::ContainerSpec spec,
                   ExecConfig config)
    : engine_(engine), config_(config), state_(std::make_shared<State>()) {
  TORPEDO_CHECK_MSG(config_.collide_every >= 0,
                    "collide_every must be >= 0 (0 disables collider mode)");
  state_->config = config_;
  state_->engine = &engine_;
  telemetry::Registry& metrics = telemetry::global();
  state_->ctr_executions = &metrics.counter("exec.executions");
  state_->ctr_crashes = &metrics.counter("exec.container_crashes");
  state_->ctr_fatal_respawns = &metrics.counter("exec.fatal_signal_respawns");
  container_ = &engine_.run(spec, make_supplier());
  state_->container = container_;
  state_->rng.reseed(config_.seed ^ (container_->id() * 0x9E3779B97F4A7C15ULL));
}

void Executor::prime(prog::Program program, Nanos stop_time) {
  TORPEDO_CHECK_MSG(state_->phase == State::Phase::kIdle,
                    "prime() requires an idle executor");
  state_->program = std::move(program);
  state_->stop_time = stop_time;
  state_->stats = RunStats{};
  state_->setup_paid = false;
  state_->iter_in_round = 0;
  // Take the round's boot snapshot: lower the program once; iterations
  // restore from it in O(dirty-state).
  if (state_->config.snapshot_exec)
    state_->image.build(state_->program);
  else
    state_->image.clear();
  state_->phase = State::Phase::kPrimed;
}

void Executor::start() {
  TORPEDO_CHECK_MSG(state_->phase == State::Phase::kPrimed,
                    "start() requires a primed executor");
  state_->phase = State::Phase::kRunning;
  round_begin_ns_ = engine_.kernel().host().now();
  if (sim::Task* t = engine_.kernel().host().find_task(container_->task()))
    engine_.kernel().host().wake(*t);
}

bool Executor::idle() const { return state_->phase == State::Phase::kIdle; }
bool Executor::crashed() const {
  return state_->phase == State::Phase::kCrashed;
}
bool Executor::running() const {
  return state_->phase == State::Phase::kRunning ||
         state_->phase == State::Phase::kPrimed;
}

const RunStats& Executor::stats() const {
  state_->refresh_signal_union();
  return state_->stats;
}

RunStats Executor::take_stats() {
  state_->refresh_signal_union();
  RunStats out = std::move(state_->stats);
  state_->stats = RunStats{};
  // Retroactive per-executor span over the execution window (begin was
  // start(), end is collection time — the observer calls this right after
  // quiesce, inside its round span).
  if (telemetry::SpanTracer* tracer = telemetry::spans();
      tracer && round_begin_ns_ >= 0) {
    telemetry::JsonDict args;
    args.set("container", container_->spec().name)
        .set("executions", out.executions)
        .set("fatal_signals", out.fatal_signals)
        .set("avg_execution_ns", out.avg_execution_time)
        .set("crashed", out.crashed);
    tracer->emit("exec", round_begin_ns_, engine_.kernel().host().now(),
                 args);
    round_begin_ns_ = -1;
  }
  return out;
}

void Executor::set_abort_flag(const std::atomic<bool>* flag) {
  state_->abort_flag = flag;
}

void Executor::interrupt() {
  if (state_->phase != State::Phase::kRunning) return;
  state_->stop_time = std::min(state_->stop_time,
                               engine_.kernel().host().now());
  if (sim::Task* t = engine_.kernel().host().find_task(container_->task()))
    engine_.kernel().host().wake(*t);
}

void Executor::restart() {
  TORPEDO_CHECK_MSG(state_->phase == State::Phase::kCrashed,
                    "restart() is only valid after a crash");
  telemetry::global().counter("exec.container_restarts").inc();
  engine_.mark_crashed(*container_, state_->stats.crash_message);
  state_->phase = State::Phase::kIdle;
  engine_.restart(*container_, make_supplier());
}

}  // namespace torpedo::exec
