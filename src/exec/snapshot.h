// Snapshot/restore execution support: the fork-server analogue.
//
// With --snapshot-exec the executor lowers the primed program into an
// arena-backed image exactly once per round (the "boot snapshot" of its call
// storage), then restores it in O(dirty-state) per iteration: only argument
// slots that reference an earlier call's result are rewritten. The cold
// path re-lowers every call of every iteration from scratch — the setup
// cost the snapshot amortizes away.
//
// The restore must be byte-identical to a cold lowering: materialize(i)
// yields exactly the SysReq lower() would have built for the same results
// vector, so both execution modes drive the kernel through identical state
// transitions and identical RNG draws. The selftest replay differ enforces
// this end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/kernel.h"
#include "prog/program.h"
#include "util/arena.h"

namespace torpedo::exec {

class ProgramImage {
 public:
  // Lowers every call of `program` into the image. Reuses the arena and the
  // request vector from the previous build (reset, not freed).
  void build(const prog::Program& program);
  void clear();

  bool built() const { return built_; }
  std::size_t size() const { return reqs_.size(); }

  // Restores call `i`'s request: patches the dirty argument slots (result
  // references) from `results` and returns the materialized request. All
  // other slots are immutable snapshot state and are never touched.
  const kernel::SysReq& materialize(std::size_t i,
                                    const std::vector<std::int64_t>& results) {
    kernel::SysReq& req = reqs_[i];
    for (std::uint32_t p = patch_begin_[i]; p < patch_begin_[i + 1]; ++p) {
      const Patch& patch = patches_[p];
      const std::int64_t r =
          patch.result_of >= 0 &&
                  static_cast<std::size_t>(patch.result_of) < results.size()
              ? results[static_cast<std::size_t>(patch.result_of)]
              : -1;
      req.args[patch.arg].val = static_cast<std::uint64_t>(r);
    }
    return req;
  }

  std::size_t dirty_slots() const { return num_patches_; }

 private:
  struct Patch {
    std::uint32_t arg = 0;       // argument index within the call
    std::int32_t result_of = -1;  // producing call index
  };

  std::vector<kernel::SysReq> reqs_;
  util::Arena arena_;
  Patch* patches_ = nullptr;          // grouped by call, arena-backed
  std::uint32_t* patch_begin_ = nullptr;  // size() + 1 prefix offsets
  std::size_t num_patches_ = 0;
  bool built_ = false;
};

}  // namespace torpedo::exec
