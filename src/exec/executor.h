// The in-container executor.
//
// Models the syz-executor + entrypoint binary Torpedo packages into each
// container image (§3.3): it receives a serialized program over IPC, loops
// it until the observer's stop timestamp using Algorithm 1 (LoopUntilTime,
// with the average-execution-time lookahead), collects the fallback coverage
// signal per call, and streams results back through the engine (which is
// what produces the LDISC softirq side-band).
//
// The two-stage latching of Algorithm 2 maps to prime() (distribute program
// + stop time, executor latches ready) and start() (release).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "feedback/signal.h"
#include "prog/program.h"
#include "runtime/engine.h"

namespace torpedo::exec {

struct ExecConfig {
  Nanos iteration_user = 6 * kMicrosecond;   // loop + marshal overhead
  Nanos ipc_setup = 60 * kMicrosecond;       // per-round latch/deserialize
  Nanos respawn_user = 90 * kMicrosecond;    // re-fork after a fatal signal
  Nanos respawn_sys = 140 * kMicrosecond;
  // Occasional off-CPU breath (minor faults, scheduler churn): what keeps a
  // pinned fuzzing core at ~85% rather than 100% busy, as in Table A.1.
  double iteration_block_chance = 0.08;
  Nanos iteration_block = 90 * kMicrosecond;
  int collide_every = 11;          // every Nth iteration runs "collided";
                                   // 0 disables collider mode
  std::uint64_t stream_every = 256;       // iterations per output flush;
                                          // 0 disables streaming
  std::uint64_t bytes_per_result = 32;    // 0 also disables streaming
  std::uint64_t seed = 0xE8EC;
  // Fork-server analogue: lower the primed program into an arena-backed
  // image once per round and restore it in O(dirty-state) per iteration
  // instead of re-lowering every call. Execution is byte-identical either
  // way (same requests, same RNG draws); only the wall-clock cost differs.
  bool snapshot_exec = true;
};

// Accounting for one blocking call: the simulated time the caller spends
// off-CPU, measured from its *virtual position* within the iteration
// (round start + time already accumulated), not the iteration start.
// `hint` overrides the deadline-based estimate when the kernel expects an
// early wake (request_module); -1 means none. Exposed for the regression
// test of the Algorithm 1 round-time accounting.
inline Nanos blocking_charge(Nanos block_until, Nanos hint, Nanos position) {
  if (hint >= 0) return hint;
  return block_until > position ? block_until - position : 0;
}

struct CallRecord {
  int nr = 0;
  std::int64_t ret = 0;
  int err = 0;
};

// Everything one round of execution produced (Algorithm 1's outputs plus
// coverage and crash state).
struct RunStats {
  std::uint64_t executions = 0;
  Nanos total_execution_time = 0;
  Nanos avg_execution_time = 0;
  // Union over iterations; derived from call_signal when stats are read
  // (never maintained per call — see State::refresh_signal_union).
  feedback::SignalSet signal;
  // Per call index. A call sees only a handful of distinct signal elements
  // per round, so the small sorted-vector set avoids an unordered_set's node
  // allocations on this per-call hot path.
  std::vector<feedback::SmallSignalSet> call_signal;
  std::vector<CallRecord> last_iteration;
  std::uint64_t fatal_signals = 0;  // iterations that died to a signal
  int last_fatal_signal = 0;
  bool crashed = false;             // the *container runtime* died
  std::string crash_message;
};

class Executor {
 public:
  Executor(runtime::Engine& engine, runtime::ContainerSpec spec,
           ExecConfig config = {});

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Stage 1 of the latch: hand the executor its program and stop timestamp.
  void prime(prog::Program program, Nanos stop_time);
  // Stage 2: release. The entrypoint begins executing at the current
  // simulated instant, so all executors' windows align.
  void start();

  bool idle() const;     // round finished (or never started)
  bool crashed() const;  // container runtime died this round
  bool running() const;

  const RunStats& stats() const;
  RunStats take_stats();

  runtime::Container& container() { return *container_; }

  // After a crash: tear down and boot a fresh container (same spec/cgroup).
  void restart();

  // Program timeout: wake the entrypoint out of any blocking call and make
  // the next loop check terminate the round (syzkaller kills overrunning
  // programs the same way).
  void interrupt();

  // Watchdog abort: when the flag is raised mid-round, the entrypoint
  // retires the round at the next iteration boundary instead of looping to
  // stop_time. Without this a wall-expensive round (e.g. a fault-injected
  // infinite-EINTR loop) spins past the watchdog, which only gets honored at
  // round boundaries. Caller keeps ownership; nullptr disables.
  void set_abort_flag(const std::atomic<bool>* flag);

 private:
  struct State;
  sim::Supplier make_supplier();

  runtime::Engine& engine_;
  ExecConfig config_;
  std::shared_ptr<State> state_;
  runtime::Container* container_ = nullptr;
  // Sim instant of the last start(); take_stats() emits the per-executor
  // "exec" span over [round_begin_ns_, now] when a span tracer is installed.
  Nanos round_begin_ns_ = -1;
};

}  // namespace torpedo::exec
