#include "exec/snapshot.h"

namespace torpedo::exec {

void ProgramImage::build(const prog::Program& program) {
  const std::size_t n = program.size();
  reqs_.clear();
  reqs_.reserve(n);
  arena_.reset();

  std::size_t patch_count = 0;
  for (const prog::Call& call : program.calls())
    for (const prog::ArgValue& value : call.args)
      if (value.kind == prog::ArgValue::Kind::kResult) ++patch_count;

  patches_ = arena_.make_array<Patch>(patch_count);
  patch_begin_ = arena_.make_array<std::uint32_t>(n + 1);
  num_patches_ = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const prog::Call& call = program.calls()[i];
    patch_begin_[i] = static_cast<std::uint32_t>(num_patches_);
    kernel::SysReq req;
    req.nr = call.desc->nr;
    req.args.reserve(call.args.size());
    for (std::uint32_t a = 0; a < call.args.size(); ++a) {
      const prog::ArgValue& value = call.args[a];
      switch (value.kind) {
        case prog::ArgValue::Kind::kLiteral:
          req.args.push_back(kernel::SysArg::num(value.literal));
          break;
        case prog::ArgValue::Kind::kString:
          req.args.push_back(kernel::SysArg::text(value.str));
          break;
        case prog::ArgValue::Kind::kResult:
          // Placeholder; materialize() patches this slot per iteration.
          // References that can never resolve (out of range for this
          // program) are baked as the constant -1 with no patch entry.
          req.args.push_back(
              kernel::SysArg::num(static_cast<std::uint64_t>(-1)));
          if (value.result_of >= 0 &&
              static_cast<std::size_t>(value.result_of) < n) {
            patches_[num_patches_++] = {a, value.result_of};
          }
          break;
      }
    }
    reqs_.push_back(std::move(req));
  }
  patch_begin_[n] = static_cast<std::uint32_t>(num_patches_);
  built_ = true;
}

void ProgramImage::clear() {
  reqs_.clear();
  arena_.reset();
  patches_ = nullptr;
  patch_begin_ = nullptr;
  num_patches_ = 0;
  built_ = false;
}

}  // namespace torpedo::exec
