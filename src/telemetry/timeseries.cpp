#include "telemetry/timeseries.h"

#include <ostream>

#include "telemetry/json.h"

namespace torpedo::telemetry {

TimeSeriesRecorder::TimeSeriesRecorder() : TimeSeriesRecorder(Config{}) {}

TimeSeriesRecorder::TimeSeriesRecorder(Config config) : config_(config) {
  if (config_.capacity < 2) config_.capacity = 2;
  if (config_.plateau_rounds < 1) config_.plateau_rounds = 1;
  samples_.reserve(config_.capacity);
}

bool TimeSeriesRecorder::record(const RoundSample& sample) {
  // Retention: keep every stride-th call; compact by dropping every other
  // retained sample (odd positions) once full, doubling the stride.
  if (seq_ % stride_ == 0) {
    if (samples_.size() == config_.capacity) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < samples_.size(); i += 2)
        samples_[kept++] = samples_[i];
      samples_.resize(kept);
      stride_ *= 2;
    }
    if (seq_ % stride_ == 0) samples_.push_back(sample);
  }
  ++seq_;

  // Plateau detection on distinct-signal growth.
  bool entered = false;
  if (sample.distinct_signals > last_distinct_) {
    last_distinct_ = sample.distinct_signals;
    rounds_since_growth_ = 0;
    in_plateau_ = false;
  } else {
    ++rounds_since_growth_;
    if (!in_plateau_ && rounds_since_growth_ >= config_.plateau_rounds) {
      in_plateau_ = true;
      ++plateaus_;
      entered = true;
    }
  }
  return entered;
}

void TimeSeriesRecorder::flush_jsonl(std::ostream& out) const {
  for (const RoundSample& s : samples_) {
    JsonDict d;
    d.set("round", s.round)
        .set("sim_ns", static_cast<std::int64_t>(s.sim_ns))
        .set("executions", s.executions)
        .set("corpus_size", s.corpus_size)
        .set("distinct_signals", s.distinct_signals)
        .set("violations", s.violations);
    if (config_.shard >= 0) d.set("shard", config_.shard);
    out << d.to_string() << "\n";
  }
}

}  // namespace torpedo::telemetry
