#include "telemetry/json.h"

#include <charconv>
#include <cstdio>

namespace torpedo::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string render_number(double v) {
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, end) : std::string("0");
}

}  // namespace

JsonDict& JsonDict::put(std::string_view key, std::string rendered) {
  fields_.emplace_back(std::string(key), std::move(rendered));
  return *this;
}

JsonDict& JsonDict::set(std::string_view key, std::int64_t v) {
  return put(key, std::to_string(v));
}

JsonDict& JsonDict::set(std::string_view key, std::uint64_t v) {
  return put(key, std::to_string(v));
}

JsonDict& JsonDict::set(std::string_view key, double v) {
  return put(key, render_number(v));
}

JsonDict& JsonDict::set(std::string_view key, bool v) {
  return put(key, v ? "true" : "false");
}

JsonDict& JsonDict::set(std::string_view key, std::string_view v) {
  return put(key, "\"" + json_escape(v) + "\"");
}

JsonDict& JsonDict::set_raw(std::string_view key, std::string_view rendered) {
  return put(key, std::string(rendered));
}

JsonDict& JsonDict::update(const JsonDict& other) {
  for (const auto& [k, v] : other.fields_) fields_.emplace_back(k, v);
  return *this;
}

std::string JsonDict::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(fields_[i].first) + "\":" + fields_[i].second;
  }
  out += "}";
  return out;
}

// --- parsing ---------------------------------------------------------------

namespace {

struct Parser {
  std::string_view s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
            s[pos] == '\r'))
      ++pos;
  }
  bool eof() const { return pos >= s.size(); }
  char peek() const { return s[pos]; }
  bool consume(char c) {
    if (eof() || s[pos] != c) return false;
    ++pos;
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!eof()) {
      char c = s[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) return std::nullopt;
        char e = s[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > s.size()) return std::nullopt;
            unsigned code = 0;
            auto [end, ec] = std::from_chars(s.data() + pos,
                                             s.data() + pos + 4, code, 16);
            if (ec != std::errc() || end != s.data() + pos + 4)
              return std::nullopt;
            pos += 4;
            // Telemetry only escapes control characters; anything else is
            // preserved as the raw byte (BMP-only, no surrogate handling).
            out += static_cast<char>(code);
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  // Captures a balanced {...} or [...] verbatim, honoring strings.
  std::optional<std::string> parse_raw() {
    const std::size_t start = pos;
    int depth = 0;
    bool in_string = false;
    while (!eof()) {
      char c = s[pos];
      if (in_string) {
        if (c == '\\') {
          pos += 2;
          continue;
        }
        if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        --depth;
        if (depth == 0) {
          ++pos;
          return std::string(s.substr(start, pos - start));
        }
      }
      ++pos;
    }
    return std::nullopt;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (eof()) return std::nullopt;
    JsonValue v;
    const char c = peek();
    if (c == '"') {
      auto str = parse_string();
      if (!str) return std::nullopt;
      v.kind = JsonValue::Kind::kString;
      v.text = std::move(*str);
      return v;
    }
    if (c == '{' || c == '[') {
      auto raw = parse_raw();
      if (!raw) return std::nullopt;
      v.kind = JsonValue::Kind::kRaw;
      v.text = std::move(*raw);
      return v;
    }
    if (s.substr(pos, 4) == "true") {
      pos += 4;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (s.substr(pos, 5) == "false") {
      pos += 5;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (s.substr(pos, 4) == "null") {
      pos += 4;
      return v;
    }
    // Number.
    const std::size_t start = pos;
    while (!eof() && (s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
                      s[pos] == 'e' || s[pos] == 'E' ||
                      (s[pos] >= '0' && s[pos] <= '9')))
      ++pos;
    const std::string_view tok = s.substr(start, pos - start);
    if (tok.empty()) return std::nullopt;
    v.kind = JsonValue::Kind::kNumber;
    {
      auto [end, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v.number);
      if (ec != std::errc() || end != tok.data() + tok.size())
        return std::nullopt;
    }
    if (tok.find('.') == std::string_view::npos &&
        tok.find('e') == std::string_view::npos &&
        tok.find('E') == std::string_view::npos) {
      auto [end, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v.integer);
      v.is_integer = ec == std::errc() && end == tok.data() + tok.size();
    }
    return v;
  }
};

}  // namespace

namespace {

// Object-body parser shared by parse_json_object (which requires the whole
// input consumed) and parse_json_array_of_objects (which parses elements in
// place). Expects `p` positioned at '{'.
std::optional<std::map<std::string, JsonValue>> parse_object_at(Parser& p) {
  if (!p.consume('{')) return std::nullopt;
  std::map<std::string, JsonValue> out;
  p.skip_ws();
  if (p.consume('}')) return out;
  while (true) {
    p.skip_ws();
    auto key = p.parse_string();
    if (!key) return std::nullopt;
    p.skip_ws();
    if (!p.consume(':')) return std::nullopt;
    auto value = p.parse_value();
    if (!value) return std::nullopt;
    out[std::move(*key)] = std::move(*value);
    p.skip_ws();
    if (p.consume(',')) continue;
    if (p.consume('}')) break;
    return std::nullopt;
  }
  return out;
}

}  // namespace

std::optional<std::map<std::string, JsonValue>> parse_json_object(
    std::string_view line) {
  Parser p{line};
  p.skip_ws();
  auto out = parse_object_at(p);
  if (!out) return std::nullopt;
  p.skip_ws();
  if (!p.eof()) return std::nullopt;
  return out;
}

std::optional<std::vector<std::map<std::string, JsonValue>>>
parse_json_array_of_objects(std::string_view text) {
  Parser p{text};
  p.skip_ws();
  if (!p.consume('[')) return std::nullopt;
  std::vector<std::map<std::string, JsonValue>> out;
  p.skip_ws();
  if (p.consume(']')) {
    p.skip_ws();
    if (!p.eof()) return std::nullopt;
    return out;
  }
  while (true) {
    p.skip_ws();
    auto obj = parse_object_at(p);
    if (!obj) return std::nullopt;
    out.push_back(std::move(*obj));
    p.skip_ws();
    if (p.consume(',')) continue;
    if (p.consume(']')) break;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.eof()) return std::nullopt;
  return out;
}

}  // namespace torpedo::telemetry
