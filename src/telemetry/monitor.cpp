#include "telemetry/monitor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "telemetry/span.h"
#include "util/log.h"

namespace torpedo::telemetry {

// --- LiveStatus ---------------------------------------------------------------

void LiveStatus::begin_campaign(int total_batches, std::size_t executors) {
  std::lock_guard<std::mutex> lock(mu_);
  total_batches_ = total_batches;
  executor_count_ = executors;
  batch_ = -1;
  round_ = -1;
  rounds_completed_ = 0;
  findings_ = 0;
  crashes_ = 0;
  executors_.clear();
  samples_.clear();
  executions_.store(0, std::memory_order_relaxed);
  done_.store(false, std::memory_order_release);
}

LiveStatus::Totals LiveStatus::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  Totals t;
  t.batch = batch_;
  t.round = round_;
  t.rounds_completed = rounds_completed_;
  t.executions = executions_.load(std::memory_order_relaxed);
  t.findings = findings_;
  t.crashes = crashes_;
  t.done = done_.load(std::memory_order_acquire);
  return t;
}

void LiveStatus::on_batch(int batch) {
  std::lock_guard<std::mutex> lock(mu_);
  batch_ = batch;
}

void LiveStatus::on_round(int round, Nanos sim_ns,
                          std::uint64_t total_executions,
                          std::vector<ExecutorState> executors) {
  const Nanos wall = steady_now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  round_ = round;
  rounds_completed_++;
  sim_ns_ = sim_ns;
  last_round_wall_ns_ = wall;
  executors_ = std::move(executors);
  executions_.store(total_executions, std::memory_order_relaxed);
  samples_.emplace_back(wall, total_executions);
  // A minute of samples bounds memory even for sub-millisecond sim rounds.
  while (samples_.size() > 1 && wall - samples_.front().first > 60 * kSecond)
    samples_.pop_front();
}

void LiveStatus::on_findings(std::uint64_t findings, std::uint64_t crashes) {
  std::lock_guard<std::mutex> lock(mu_);
  findings_ = findings;
  crashes_ = crashes;
}

void LiveStatus::on_signal_growth(int rounds_since_growth,
                                  std::uint64_t plateaus, bool in_plateau) {
  std::lock_guard<std::mutex> lock(mu_);
  rounds_since_growth_ = rounds_since_growth;
  plateaus_ = plateaus;
  in_plateau_ = in_plateau;
}

double LiveStatus::execs_per_sec(Nanos window_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < 2) return 0;
  const auto& [end_wall, end_execs] = samples_.back();
  // Oldest sample still inside the window.
  const std::pair<Nanos, std::uint64_t>* base = &samples_.front();
  for (const auto& sample : samples_) {
    if (end_wall - sample.first <= window_ns) {
      base = &sample;
      break;
    }
  }
  if (base->first >= end_wall || end_execs < base->second) return 0;
  return static_cast<double>(end_execs - base->second) /
         (static_cast<double>(end_wall - base->first) / kSecond);
}

JsonDict LiveStatus::to_json() const {
  const double rate = execs_per_sec();
  std::lock_guard<std::mutex> lock(mu_);
  JsonDict executors;
  std::string executor_array = "[";
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    const ExecutorState& e = executors_[i];
    JsonDict d;
    d.set("name", e.name)
        .set("executions", e.executions)
        .set("crashed", e.crashed);
    if (i) executor_array += ",";
    executor_array += d.to_string();
  }
  executor_array += "]";

  JsonDict out;
  out.set("batch", batch_)
      .set("batches_total", total_batches_)
      .set("round", round_)
      .set("rounds_completed", rounds_completed_)
      .set("executions", executions_.load(std::memory_order_relaxed))
      .set("execs_per_sec", rate)
      .set("sim_ns", sim_ns_)
      .set("wall_ns", wall_now_ns())
      .set("wall_since_last_round_ms",
           last_round_wall_ns_ > 0
               ? static_cast<double>(steady_now_ns() - last_round_wall_ns_) /
                     kMillisecond
               : -1.0)
      .set("findings", findings_)
      .set("crashes", crashes_)
      .set("rounds_since_signal_growth", rounds_since_growth_)
      .set("plateaus", plateaus_)
      .set("in_plateau", in_plateau_)
      .set_raw("executors", executor_array);
  return out;
}

// --- HeartbeatWriter ----------------------------------------------------------

HeartbeatWriter::HeartbeatWriter(std::filesystem::path path)
    : path_(std::move(path)) {
  if (path_.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path_.parent_path(), ec);
  }
}

void HeartbeatWriter::stamp(Nanos sim_ns, int batch, int round,
                            std::uint64_t executions) {
  ++stamps_;
  JsonDict d;
  d.set("sim_ns", sim_ns)
      .set("wall_ns", wall_now_ns())
      .set("batch", batch)
      .set("round", round)
      .set("executions", executions)
      .set("stamps", stamps_);
  if (monitor_port_ >= 0) d.set("monitor_port", monitor_port_);
  const std::filesystem::path tmp = path_.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << d.to_string() << "\n";
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
}

// --- Watchdog -----------------------------------------------------------------

Watchdog::Watchdog() : Watchdog(Config{}) {}

Watchdog::Watchdog(Config config, Registry* registry) : config_(config) {
  ctr_stalls_ = &registry->counter("campaign.stalls");
}

Nanos Watchdog::now() const {
  return now_fn_ ? now_fn_(now_ctx_) : steady_now_ns();
}

bool Watchdog::poll(std::uint64_t executions) {
  const Nanos t = now();
  std::lock_guard<std::mutex> lock(mu_);
  if (!primed_ || executions != last_executions_) {
    if (stalled_)
      TORPEDO_LOG(LogLevel::kInfo,
                  "watchdog: campaign resumed after stall (+%llu executions)",
                  static_cast<unsigned long long>(executions -
                                                  last_executions_));
    primed_ = true;
    stalled_ = false;
    last_executions_ = executions;
    last_progress_ns_ = t;
    return false;
  }
  if (stalled_ || t - last_progress_ns_ < config_.stall_budget_wall_ns)
    return false;

  // Newly stalled: count it, capture where the campaign thread is stuck.
  stalled_ = true;
  ++stall_count_;
  ctr_stalls_->inc();
  last_stall_spans_.clear();
  if (SpanTracer* tracer = spans()) last_stall_spans_ = tracer->open_span_names();
  std::string stack;
  for (const std::string& name : last_stall_spans_) {
    if (!stack.empty()) stack += " > ";
    stack += name;
  }
  TORPEDO_LOG(LogLevel::kWarn,
              "watchdog: no execution progress for %.1f s (executions=%llu); "
              "open spans: %s%s",
              static_cast<double>(t - last_progress_ns_) / kSecond,
              static_cast<unsigned long long>(executions),
              stack.empty() ? "<no tracer installed>" : stack.c_str(),
              config_.abort_on_stall ? "; requesting batch abort" : "");
  if (config_.abort_on_stall) abort_.store(true, std::memory_order_relaxed);
  return true;
}

bool Watchdog::stalled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stalled_;
}

std::uint64_t Watchdog::stalls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_count_;
}

std::vector<std::string> Watchdog::last_stall_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_stall_spans_;
}

// --- MonitorServer ------------------------------------------------------------

MonitorServer::MonitorServer() : MonitorServer(Config{}) {}

MonitorServer::MonitorServer(Config config) : config_(std::move(config)) {}

MonitorServer::~MonitorServer() { stop(); }

void MonitorServer::add_shard(int shard, LiveStatus* status,
                              Watchdog* watchdog) {
  shards_.push_back(ShardSlot{shard, status, watchdog});
}

bool MonitorServer::start() {
  if (running()) return true;
  exec_counter_ = &config_.registry->counter("exec.executions");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  TORPEDO_LOG(LogLevel::kInfo, "monitor: serving on %s:%d",
              config_.bind_address.c_str(), port_);
  return true;
}

void MonitorServer::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MonitorServer::loop() {
  const int timeout_ms = static_cast<int>(
      std::max<Nanos>(config_.poll_interval_ns / kMillisecond, 10));
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    // Watchdog rides the serving loop: one progress sample per tick.
    if (watchdog_ != nullptr && exec_counter_ != nullptr)
      watchdog_->poll(exec_counter_->value());
    // Per-shard watchdogs track per-shard progress. A finished shard stops
    // executing forever — that is completion, not a stall, so it is muted.
    for (const ShardSlot& slot : shards_)
      if (slot.watchdog != nullptr && !slot.status->done())
        slot.watchdog->poll(slot.status->executions());
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    serve_client(fd);
    ::close(fd);
  }
}

namespace {

// Reads until the end of the request headers (or 8 KiB / 2 s, whichever
// comes first). A /metrics scrape is a single small GET; anything larger is
// not a client this server owes service to.
std::string read_request(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  return request;
}

// Writes the whole response, riding out EINTR and short sends to slow
// clients: a partial send() is progress, not failure, and a full socket
// buffer earns a bounded poll(POLLOUT) wait rather than a dropped response.
// Gives up only on a hard error or a client that stays unwritable for 2 s.
void write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 2000) > 0) continue;
    }
    return;  // hard error, hangup, or a client stalled past the budget
  }
}

std::string_view reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

}  // namespace

void MonitorServer::serve_client(int fd) {
  const std::string request = read_request(fd);
  // Request line: "GET /path HTTP/1.1".
  std::string_view method, path;
  const std::size_t line_end = request.find("\r\n");
  if (line_end != std::string::npos) {
    std::string_view line(request.data(), line_end);
    const std::size_t sp1 = line.find(' ');
    if (sp1 != std::string_view::npos) {
      const std::size_t sp2 = line.find(' ', sp1 + 1);
      method = line.substr(0, sp1);
      path = sp2 == std::string_view::npos
                 ? line.substr(sp1 + 1)
                 : line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  // Strip a query string: scrapers add ?timeout=... style params.
  if (const std::size_t q = path.find('?'); q != std::string_view::npos)
    path = path.substr(0, q);

  requests_.fetch_add(1, std::memory_order_relaxed);
  const Response response = handle(method, path);
  std::string out = "HTTP/1.1 " + std::to_string(response.code) + " " +
                    std::string(reason_phrase(response.code)) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " +
                    std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + response.body;
  write_all(fd, out);
}

std::string MonitorServer::metrics_text() const {
  std::string out = config_.registry->to_prometheus();
  // Synthesized campaign series: the canonical operational signals, stable
  // names independent of internal instrument naming.
  auto counter = [&out](std::string_view name, std::string_view help,
                        std::uint64_t v) {
    out += "# HELP " + std::string(name) + " " + std::string(help) + "\n";
    out += "# TYPE " + std::string(name) + " counter\n";
    out += std::string(name) + " " + std::to_string(v) + "\n";
  };
  auto gauge = [&out](std::string_view name, std::string_view help, double v) {
    out += "# HELP " + std::string(name) + " " + std::string(help) + "\n";
    out += "# TYPE " + std::string(name) + " gauge\n";
    std::ostringstream s;
    s.imbue(std::locale::classic());
    s << v;
    out += std::string(name) + " " + s.str() + "\n";
  };
  gauge("torpedo_up", "monitor is serving", 1);
  if (status_ != nullptr) {
    const JsonDict status = status_->to_json();
    const auto parsed = parse_json_object(status.to_string());
    auto num = [&parsed](const char* key) -> double {
      if (!parsed) return 0;
      auto it = parsed->find(key);
      if (it == parsed->end()) return 0;
      return it->second.is_integer ? static_cast<double>(it->second.integer)
                                   : it->second.number;
    };
    counter("torpedo_executions_total", "total simulated program executions",
            status_->executions());
    counter("torpedo_rounds_total", "observed rounds completed",
            static_cast<std::uint64_t>(num("rounds_completed")));
    counter("torpedo_findings_total", "confirmed findings so far",
            static_cast<std::uint64_t>(num("findings")));
    counter("torpedo_crash_findings_total", "distinct runtime crashes so far",
            static_cast<std::uint64_t>(num("crashes")));
    gauge("torpedo_batch", "current batch index", num("batch"));
    gauge("torpedo_round", "last completed round index", num("round"));
    gauge("torpedo_execs_per_second",
          "execution rate over a 10s sliding window",
          status_->execs_per_sec());
  }
  if (watchdog_ != nullptr)
    gauge("torpedo_watchdog_stalled", "1 while the campaign is stalled",
          watchdog_->stalled() ? 1 : 0);

  if (!shards_.empty()) {
    // One HELP/TYPE header per family, one {shard="k"} sample per shard.
    auto family = [&out](std::string_view name, std::string_view help,
                         std::string_view type,
                         const std::vector<std::pair<int, double>>& samples) {
      out += "# HELP " + std::string(name) + " " + std::string(help) + "\n";
      out += "# TYPE " + std::string(name) + " " + std::string(type) + "\n";
      for (const auto& [shard, v] : samples) {
        std::ostringstream s;
        s.imbue(std::locale::classic());
        s << v;
        out += std::string(name) + "{shard=\"" + std::to_string(shard) +
               "\"} " + s.str() + "\n";
      }
    };
    std::vector<LiveStatus::Totals> totals;
    std::vector<double> rates;
    for (const ShardSlot& slot : shards_) {
      totals.push_back(slot.status->totals());
      rates.push_back(slot.status->execs_per_sec());
    }
    auto column = [&](auto&& get) {
      std::vector<std::pair<int, double>> samples;
      for (std::size_t i = 0; i < shards_.size(); ++i)
        samples.emplace_back(shards_[i].shard, get(i));
      return samples;
    };
    gauge("torpedo_shards", "shard count of the running campaign",
          static_cast<double>(shards_.size()));
    family("torpedo_shard_executions_total",
           "simulated program executions per shard", "counter",
           column([&](std::size_t i) {
             return static_cast<double>(totals[i].executions);
           }));
    family("torpedo_shard_rounds_total", "observed rounds per shard",
           "counter", column([&](std::size_t i) {
             return static_cast<double>(totals[i].rounds_completed);
           }));
    family("torpedo_shard_findings_total", "confirmed findings per shard",
           "counter", column([&](std::size_t i) {
             return static_cast<double>(totals[i].findings);
           }));
    family("torpedo_shard_crash_findings_total",
           "distinct runtime crashes per shard", "counter",
           column([&](std::size_t i) {
             return static_cast<double>(totals[i].crashes);
           }));
    family("torpedo_shard_batch", "current batch index per shard", "gauge",
           column([&](std::size_t i) {
             return static_cast<double>(totals[i].batch);
           }));
    family("torpedo_shard_execs_per_second",
           "per-shard execution rate over a 10s sliding window", "gauge",
           column([&](std::size_t i) { return rates[i]; }));
    family("torpedo_shard_done", "1 once the shard finished its batches",
           "gauge", column([&](std::size_t i) {
             return totals[i].done ? 1.0 : 0.0;
           }));
    std::vector<std::pair<int, double>> stalled;
    for (const ShardSlot& slot : shards_)
      if (slot.watchdog != nullptr)
        stalled.emplace_back(slot.shard,
                             slot.watchdog->stalled() ? 1.0 : 0.0);
    if (!stalled.empty())
      family("torpedo_shard_watchdog_stalled", "1 while the shard is stalled",
             "gauge", stalled);

    // No campaign-wide LiveStatus in sharded mode: synthesize the canonical
    // unlabeled totals by summing shards so dashboards keep working.
    if (status_ == nullptr) {
      LiveStatus::Totals sum;
      double rate_sum = 0;
      for (std::size_t i = 0; i < totals.size(); ++i) {
        sum.executions += totals[i].executions;
        sum.rounds_completed += totals[i].rounds_completed;
        sum.findings += totals[i].findings;
        sum.crashes += totals[i].crashes;
        rate_sum += rates[i];
      }
      counter("torpedo_executions_total",
              "total simulated program executions", sum.executions);
      counter("torpedo_rounds_total", "observed rounds completed",
              static_cast<std::uint64_t>(sum.rounds_completed));
      counter("torpedo_findings_total", "confirmed findings so far",
              sum.findings);
      counter("torpedo_crash_findings_total",
              "distinct runtime crashes so far", sum.crashes);
      gauge("torpedo_execs_per_second",
            "execution rate over a 10s sliding window", rate_sum);
    }
  }
  if (extra_) out += extra_();
  return out;
}

std::string MonitorServer::status_json() const {
  JsonDict out = status_ != nullptr ? status_->to_json() : JsonDict{};
  if (status_ == nullptr)
    out.set("wall_ns", wall_now_ns());
  // The actual bound port: with --monitor-port 0 (ephemeral, the
  // multi-process default) this is how scrapers learn the real address.
  out.set("monitor_port", port_);
  out.set("monitor_requests", requests());
  if (watchdog_ != nullptr) {
    out.set("stalled", watchdog_->stalled())
        .set("stalls", watchdog_->stalls());
  }
  if (!shards_.empty()) {
    std::uint64_t executions = 0;
    double rate = 0;
    std::string shard_array = "[";
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const ShardSlot& slot = shards_[i];
      JsonDict d = slot.status->to_json();
      d.set("shard", slot.shard).set("done", slot.status->done());
      if (slot.watchdog != nullptr) {
        d.set("stalled", slot.watchdog->stalled())
            .set("stalls", slot.watchdog->stalls());
      }
      if (i) shard_array += ",";
      shard_array += d.to_string();
      executions += slot.status->executions();
      rate += slot.status->execs_per_sec();
    }
    shard_array += "]";
    out.set("shard_count", static_cast<std::uint64_t>(shards_.size()))
        .set_raw("shards", shard_array);
    if (status_ == nullptr)
      out.set("executions", executions).set("execs_per_sec", rate);
  }
  return out.to_string();
}

MonitorServer::Response MonitorServer::handle(std::string_view method,
                                              std::string_view path) const {
  if (method != "GET") {
    JsonDict err;
    err.set("error", "method not allowed").set("method", method);
    return {405, "application/json", err.to_string() + "\n"};
  }
  if (path == "/metrics")
    return {200, "text/plain; version=0.0.4; charset=utf-8", metrics_text()};
  if (path == "/status")
    return {200, "application/json", status_json() + "\n"};
  if (path == "/healthz")
    return {200, "text/plain; charset=utf-8", "ok\n"};
  for (const auto& [prefix, handler] : endpoints_) {
    const bool exact = path == prefix;
    const bool subpath = path.size() > prefix.size() &&
                         path.substr(0, prefix.size()) == prefix &&
                         path[prefix.size()] == '/';
    if (!exact && !subpath) continue;
    if (auto body = handler(path))
      return {200, "application/json", *body + "\n"};
    break;  // known prefix, unknown subpath: structured 404
  }
  JsonDict err;
  err.set("error", "not found").set("path", path);
  return {404, "application/json", err.to_string() + "\n"};
}

// --- http_get -----------------------------------------------------------------

std::string http_get(int port, std::string_view path, std::string_view host) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, std::string(host).c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + std::string(path) +
                              " HTTP/1.1\r\nHost: " + std::string(host) +
                              "\r\nConnection: close\r\n\r\n";
  write_all(fd, request);
  std::string response;
  char buf[4096];
  while (true) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace torpedo::telemetry
