// Signal-growth time series: a compact per-round recorder with a plateau
// detector.
//
// Counters and spans answer "what is the campaign doing right now"; this
// recorder answers "how is the search progressing" — one sample per
// observer round (cumulative executions, corpus size, distinct coverage
// signals, violations flagged) kept in a bounded, deterministic ring and
// flushed to workdir/timeseries.jsonl at finalize. Samples are stamped with
// sim-time only, so the artifact is byte-deterministic for a fixed (seed,
// config) and survives the selftest replay differ and the snapshot on/off
// tree diff.
//
// Retention is stride doubling, not a sliding window: the recorder keeps
// every stride-th sample, and when the retained count reaches capacity it
// drops every other retained sample and doubles the stride. A run of any
// length therefore keeps <= capacity points that still span the whole
// campaign (a sliding window would forget the early growth phase, which is
// the interesting part of a growth curve). The kept-set depends only on the
// sequence of record() calls — deterministic by construction.
//
// The plateau detector watches distinct_signals: when it has not grown for
// `plateau_rounds` consecutive samples the recorder enters a plateau (one
// `campaign.plateaus` increment per entry, surfaced in /status); any growth
// exits it. Single-threaded — each shard owns its recorder; merged output
// is shard-major (all of shard 0's samples, then shard 1's, ...).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/time.h"

namespace torpedo::telemetry {

// One per-round observation. All totals are cumulative campaign-to-date
// values (the growth curve is the point, not per-round deltas).
struct RoundSample {
  int round = 0;
  Nanos sim_ns = 0;
  std::uint64_t executions = 0;
  std::uint64_t corpus_size = 0;
  std::uint64_t distinct_signals = 0;
  std::uint64_t violations = 0;
};

class TimeSeriesRecorder {
 public:
  struct Config {
    std::size_t capacity = 4096;  // max retained samples (power of two best)
    int plateau_rounds = 32;      // samples without signal growth => plateau
    int shard = -1;               // stamped into flushed lines when >= 0
  };

  TimeSeriesRecorder();  // default Config
  explicit TimeSeriesRecorder(Config config);

  // Feeds one round's totals. Returns true exactly when this sample makes
  // the series enter a plateau (callers bump campaign.plateaus on true).
  bool record(const RoundSample& sample);

  // Writes retained samples as JSONL, one object per line:
  //   {"round":..,"sim_ns":..,"executions":..,"corpus_size":..,
  //    "distinct_signals":..,"violations":..[,"shard":..]}
  void flush_jsonl(std::ostream& out) const;

  const std::vector<RoundSample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  // Current retention stride: 1 until the first compaction, then doubles.
  std::uint64_t stride() const { return stride_; }

  int shard() const { return config_.shard; }
  std::uint64_t plateaus() const { return plateaus_; }
  int rounds_since_growth() const { return rounds_since_growth_; }
  bool in_plateau() const { return in_plateau_; }

 private:
  Config config_;
  std::vector<RoundSample> samples_;
  std::uint64_t stride_ = 1;
  std::uint64_t seq_ = 0;  // record() calls so far

  std::uint64_t last_distinct_ = 0;
  int rounds_since_growth_ = 0;
  bool in_plateau_ = false;
  std::uint64_t plateaus_ = 0;
};

}  // namespace torpedo::telemetry
