// Minimal JSON support for the telemetry layer.
//
// Telemetry artifacts (the JSONL round trace, metrics.json, BENCH_*.json)
// are flat-ish JSON objects produced and consumed by this repo alone, so a
// full JSON library would be overkill. JsonDict renders an insertion-ordered
// object; parse_json_object parses one back for round-trip tests and
// tooling. Nested objects/arrays are composed with set_raw and come back as
// raw text on the parse side.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace torpedo::telemetry {

// Escapes for a double-quoted JSON string (quotes, backslash, control
// characters).
std::string json_escape(std::string_view s);

// Insertion-ordered JSON object builder.
class JsonDict {
 public:
  JsonDict& set(std::string_view key, std::int64_t v);
  JsonDict& set(std::string_view key, std::uint64_t v);
  JsonDict& set(std::string_view key, int v) {
    return set(key, static_cast<std::int64_t>(v));
  }
  JsonDict& set(std::string_view key, double v);
  JsonDict& set(std::string_view key, bool v);
  JsonDict& set(std::string_view key, std::string_view v);
  JsonDict& set(std::string_view key, const char* v) {
    return set(key, std::string_view(v));
  }
  // Inserts pre-rendered JSON verbatim (nested object/array).
  JsonDict& set_raw(std::string_view key, std::string_view rendered);
  // Appends every field of `other` after this dict's fields.
  JsonDict& update(const JsonDict& other);

  bool empty() const { return fields_.empty(); }
  std::string to_string() const;

 private:
  JsonDict& put(std::string_view key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;
};

// One parsed JSON value. Integers that fit std::int64_t keep exact
// precision in `integer` (doubles round past 2^53; wall-clock epoch stamps
// do not fit a double).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kRaw };
  Kind kind = Kind::kNull;
  bool boolean = false;
  bool is_integer = false;
  std::int64_t integer = 0;
  double number = 0;
  std::string text;  // string payload, or raw JSON for kRaw
};

// Parses one JSON object (e.g. one JSONL line). Nested objects and arrays
// are captured as kRaw values. Returns nullopt on malformed input.
std::optional<std::map<std::string, JsonValue>> parse_json_object(
    std::string_view line);

// Parses a JSON array whose elements are all objects (e.g. the Chrome
// trace_event array, a bundle's violations list). Element fields follow the
// parse_json_object rules. Returns nullopt on malformed input or if any
// element is not an object.
std::optional<std::vector<std::map<std::string, JsonValue>>>
parse_json_array_of_objects(std::string_view text);

}  // namespace torpedo::telemetry
