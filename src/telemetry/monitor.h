// Live campaign monitor: the in-flight half of the observability stack.
//
// Everything before this layer was post-hoc — metrics.json, trace.jsonl and
// the span file are autopsies, readable only after the campaign exits. A
// long-running fuzzer is operated like a service: watched live for
// execs/sec, stalls, and crash rates. This header provides the four pieces
// of that operation:
//
//   * MonitorServer  — a dependency-free embedded HTTP server (blocking
//     poll() loop on one background thread) serving GET /metrics in
//     Prometheus text exposition format, GET /status as JSON, and
//     GET /healthz. Enabled via `torpedo run --monitor-port N`.
//   * LiveStatus     — a thread-safe snapshot of the running campaign
//     (batch, round, per-executor state, execs/sec over a sliding window),
//     updated by the campaign thread at round boundaries and read by the
//     monitor thread per scrape.
//   * HeartbeatWriter — stamps workdir/heartbeat.json (sim/wall ns, batch,
//     round, executions) at round boundaries, atomically (tmp + rename), so
//     an external operator can `cat` liveness without HTTP.
//   * Watchdog       — detects stalls: no execution progress for a
//     configurable wall-time budget. On a stall it increments the
//     `campaign.stalls` counter (exposed as torpedo_campaign_stalls_total),
//     logs the open span stack (which phase the campaign thread is stuck
//     in), and optionally raises an abort flag the fuzzing loop honors at
//     the next round boundary.
//
// Threading: the campaign simulation stays single-threaded. The monitor
// thread only touches relaxed atomics (telemetry counters), mutex-guarded
// snapshots (LiveStatus, Registry exports, the span tracer's open stack),
// and its own sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/telemetry.h"
#include "util/time.h"

namespace torpedo::telemetry {

// --- LiveStatus ---------------------------------------------------------------

// Campaign state shared across the campaign and monitor threads. The
// campaign thread calls the on_*() mutators (round-boundary granularity);
// any thread may call to_json()/executions()/execs_per_sec().
class LiveStatus {
 public:
  struct ExecutorState {
    std::string name;
    std::uint64_t executions = 0;  // in the last completed round
    bool crashed = false;
  };

  void begin_campaign(int total_batches, std::size_t executors);
  void on_batch(int batch);
  void on_round(int round, Nanos sim_ns, std::uint64_t total_executions,
                std::vector<ExecutorState> executors);
  void on_findings(std::uint64_t findings, std::uint64_t crashes);
  // Signal-growth / plateau state from the timeseries recorder, surfaced in
  // /status so an operator can see a stuck search without reading files.
  void on_signal_growth(int rounds_since_growth, std::uint64_t plateaus,
                        bool in_plateau);
  // Marks this campaign finished: sharded runs flag completed shards so the
  // per-shard watchdog stops treating "no new executions" as a stall.
  void set_done() { done_.store(true, std::memory_order_release); }
  bool done() const { return done_.load(std::memory_order_acquire); }

  std::uint64_t executions() const {
    return executions_.load(std::memory_order_relaxed);
  }
  // Cheap scalar snapshot for aggregation (per-shard /metrics series).
  struct Totals {
    int batch = -1;
    int round = -1;
    int rounds_completed = 0;
    std::uint64_t executions = 0;
    std::uint64_t findings = 0;
    std::uint64_t crashes = 0;
    bool done = false;
  };
  Totals totals() const;
  // Executions per wall second over the trailing window (default 10 s),
  // computed from round-boundary samples.
  double execs_per_sec(Nanos window_ns = 10 * kSecond) const;

  // {"batch":..,"round":..,"executions":..,"execs_per_sec":..,
  //  "executors":[{"name":..,"executions":..,"crashed":..},...],...}
  JsonDict to_json() const;

 private:
  mutable std::mutex mu_;
  int total_batches_ = 0;
  std::size_t executor_count_ = 0;
  int batch_ = -1;
  int round_ = -1;
  int rounds_completed_ = 0;
  Nanos sim_ns_ = 0;
  Nanos last_round_wall_ns_ = 0;
  std::uint64_t findings_ = 0;
  std::uint64_t crashes_ = 0;
  int rounds_since_growth_ = 0;
  std::uint64_t plateaus_ = 0;
  bool in_plateau_ = false;
  std::vector<ExecutorState> executors_;
  // (wall_ns, total executions) samples for the sliding-window rate.
  std::deque<std::pair<Nanos, std::uint64_t>> samples_;
  std::atomic<std::uint64_t> executions_{0};
  std::atomic<bool> done_{false};
};

// --- HeartbeatWriter ----------------------------------------------------------

// Stamps a single-object JSON heartbeat file. Writes are atomic (tmp file +
// rename) so a reader never observes a torn heartbeat.
class HeartbeatWriter {
 public:
  explicit HeartbeatWriter(std::filesystem::path path);

  // One stamp: {"sim_ns":..,"wall_ns":..,"batch":..,"round":..,
  // "executions":..,"stamps":..[,"monitor_port":..]}.
  void stamp(Nanos sim_ns, int batch, int round, std::uint64_t executions);

  // Records the actual bound monitor port (set after MonitorServer::start()
  // resolves an ephemeral --monitor-port 0). Stamped into every subsequent
  // heartbeat so an external reader — the fleet coordinator, an operator —
  // can discover where this process's /metrics lives without guessing.
  void set_monitor_port(int port) { monitor_port_ = port; }
  int monitor_port() const { return monitor_port_; }

  const std::filesystem::path& path() const { return path_; }
  std::uint64_t stamps() const { return stamps_; }

 private:
  std::filesystem::path path_;
  std::uint64_t stamps_ = 0;
  int monitor_port_ = -1;  // < 0: no monitor, field omitted
};

// --- Watchdog -----------------------------------------------------------------

class Watchdog {
 public:
  struct Config {
    // Wall time without execution progress before the campaign counts as
    // stalled.
    Nanos stall_budget_wall_ns = 30 * kSecond;
    // Raise the abort flag on stall; the fuzzing loop checks it at round
    // boundaries and retires the batch cleanly.
    bool abort_on_stall = false;
  };

  Watchdog();  // default Config, global registry
  explicit Watchdog(Config config, Registry* registry = &global());

  // Wall-clock injection for tests (defaults to steady_now_ns).
  using NowFn = Nanos (*)(void*);
  void set_clock(NowFn fn, void* ctx) {
    now_fn_ = fn;
    now_ctx_ = ctx;
  }

  // Samples progress; the monitor thread calls this every loop tick with the
  // current total execution count. Returns true when this call *newly*
  // detected a stall (one trip per stall; recovery re-arms).
  bool poll(std::uint64_t executions);

  bool stalled() const;
  std::uint64_t stalls() const;
  // The open span stack captured at the last stall, outermost first.
  std::vector<std::string> last_stall_spans() const;

  // Set on stall when config.abort_on_stall; cleared by the owner.
  const std::atomic<bool>& abort_flag() const { return abort_; }
  void clear_abort() { abort_.store(false, std::memory_order_relaxed); }

 private:
  Nanos now() const;

  Config config_;
  Counter* ctr_stalls_ = nullptr;
  NowFn now_fn_ = nullptr;
  void* now_ctx_ = nullptr;
  std::atomic<bool> abort_{false};

  mutable std::mutex mu_;
  bool primed_ = false;
  bool stalled_ = false;
  Nanos last_progress_ns_ = 0;
  std::uint64_t last_executions_ = 0;
  std::uint64_t stall_count_ = 0;
  std::vector<std::string> last_stall_spans_;
};

// --- MonitorServer ------------------------------------------------------------

class MonitorServer {
 public:
  struct Config {
    int port = 0;                          // 0 = pick an ephemeral port
    std::string bind_address = "127.0.0.1";
    Registry* registry = &global();
    // Loop tick: watchdog poll cadence and stop() latency bound.
    Nanos poll_interval_ns = 200 * kMillisecond;
  };

  MonitorServer();  // default Config
  explicit MonitorServer(Config config);
  ~MonitorServer();  // stop() + join

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  // Wiring; call before start() (the monitor thread reads these unguarded).
  void set_status(LiveStatus* status) { status_ = status; }
  void set_watchdog(Watchdog* watchdog) { watchdog_ = watchdog; }
  // Registers one shard of a sharded campaign. /metrics grows
  // torpedo_shard_* series labeled {shard="k"}, /status grows a "shards"
  // array, and when no campaign-wide LiveStatus is installed the unlabeled
  // totals are synthesized by summing the shards. The watchdog (optional) is
  // polled against this shard's execution count each loop tick, and muted
  // once the shard reports done.
  void add_shard(int shard, LiveStatus* status, Watchdog* watchdog = nullptr);
  // Extra exposition text appended to /metrics (e.g. the per-syscall
  // attribution series, which need a name table this layer can't see).
  // Must be thread-safe: runs on the monitor thread.
  using ExtraMetricsFn = std::function<std::string()>;
  void set_extra_metrics(ExtraMetricsFn fn) { extra_ = std::move(fn); }
  // Registers a JSON endpoint under `prefix`: GET requests for `prefix`
  // itself or any `prefix/...` subpath are routed to the handler, which
  // returns the JSON body or nullopt (-> structured 404). Handlers must be
  // thread-safe (they run on the monitor thread) and installed before
  // start(). First matching prefix wins.
  using JsonEndpointFn =
      std::function<std::optional<std::string>(std::string_view path)>;
  void add_json_endpoint(std::string prefix, JsonEndpointFn handler) {
    endpoints_.emplace_back(std::move(prefix), std::move(handler));
  }

  // Binds, listens, and spawns the serving thread. False on bind failure.
  bool start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  int port() const { return port_; }  // actual port once start() succeeded
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

  // The endpoint contract, testable without sockets.
  struct Response {
    int code = 200;
    std::string content_type;
    std::string body;
  };
  Response handle(std::string_view method, std::string_view path) const;
  // Full /metrics payload: registry exposition + campaign status series
  // (torpedo_executions_total, torpedo_execs_per_second, ...) + extra.
  std::string metrics_text() const;
  std::string status_json() const;

 private:
  void loop();
  void serve_client(int fd);

  struct ShardSlot {
    int shard = 0;
    LiveStatus* status = nullptr;
    Watchdog* watchdog = nullptr;
  };

  Config config_;
  LiveStatus* status_ = nullptr;
  Watchdog* watchdog_ = nullptr;
  std::vector<ShardSlot> shards_;
  ExtraMetricsFn extra_;
  std::vector<std::pair<std::string, JsonEndpointFn>> endpoints_;
  Counter* exec_counter_ = nullptr;  // watchdog progress source
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

// Minimal loopback HTTP GET (tests and benches scrape the monitor with it).
// Returns the full response (status line + headers + body), or "" on error.
std::string http_get(int port, std::string_view path,
                     std::string_view host = "127.0.0.1");

}  // namespace torpedo::telemetry
