#include "telemetry/span.h"

#include "telemetry/telemetry.h"

namespace torpedo::telemetry {

namespace {
SpanTracer* g_spans = nullptr;
thread_local SpanTracer* t_spans = nullptr;

// Emits one trace_event "X" object for `span` under process lane `pid`.
void write_trace_event(std::ostream& out, const Span& span, int pid,
                       bool& first) {
  JsonDict args;
  args.set("id", span.id)
      .set("parent", span.parent)
      .set("sim_begin_ns", span.sim_begin_ns)
      .set("sim_end_ns", span.sim_end_ns)
      .set("wall_begin_ns", span.wall_begin_ns)
      .set("wall_end_ns", span.wall_end_ns);

  JsonDict event;
  event.set("name", span.name)
      .set("cat", "torpedo")
      .set("ph", "X")
      .set("ts", span.sim_begin_ns / 1000)
      .set("dur", span.sim_duration() / 1000)
      .set("pid", pid)
      .set("tid", 1);
  if (span.args_json.empty()) {
    event.set_raw("args", args.to_string());
  } else {
    // Merge user args after the span bookkeeping fields.
    std::string merged = args.to_string();
    merged.pop_back();  // drop '}'
    merged += ",";
    merged += std::string_view(span.args_json).substr(1);  // drop '{'
    event.set_raw("args", merged);
  }
  if (!first) out << ",\n";
  first = false;
  out << event.to_string();
}
}  // namespace

SpanTracer* spans() { return t_spans ? t_spans : g_spans; }
void set_spans(SpanTracer* tracer) { g_spans = tracer; }
void set_thread_spans(SpanTracer* tracer) { t_spans = tracer; }

std::uint64_t SpanTracer::begin_impl(std::string_view name,
                                     std::string args_json) {
  OpenSpan open;
  open.name = std::string(name);
  open.args_json = std::move(args_json);
  open.sim_begin_ns = sim_now();
  open.wall_begin_ns = wall_now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  open.id = next_id_++;
  stack_.push_back(std::move(open));
  return stack_.back().id;
}

std::size_t SpanTracer::open_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stack_.size();
}

std::vector<std::string> SpanTracer::open_span_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(stack_.size());
  for (const OpenSpan& open : stack_) names.push_back(open.name);
  return names;
}

std::uint64_t SpanTracer::begin(std::string_view name) {
  return begin_impl(name, std::string());
}

std::uint64_t SpanTracer::begin(std::string_view name, const JsonDict& args) {
  return begin_impl(name, args.empty() ? std::string() : args.to_string());
}

void SpanTracer::end(std::uint64_t id) {
  const Nanos sim = sim_now();
  const Nanos wall = wall_now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  // Unknown id (double end, or survivor of clear()): ignore.
  bool found = false;
  for (const OpenSpan& open : stack_)
    if (open.id == id) found = true;
  if (!found) return;

  // Close everything at or above `id`; a well-nested caller only ever closes
  // the top, but a child leaked open by an early return must not re-parent
  // every later span under it.
  while (!stack_.empty()) {
    OpenSpan open = std::move(stack_.back());
    stack_.pop_back();
    const std::uint64_t closed = open.id;
    Span span;
    span.id = closed;
    span.parent = stack_.empty() ? 0 : stack_.back().id;
    span.name = std::move(open.name);
    span.args_json = std::move(open.args_json);
    span.sim_begin_ns = open.sim_begin_ns;
    span.sim_end_ns = sim;
    span.wall_begin_ns = open.wall_begin_ns;
    span.wall_end_ns = wall;
    done_.push_back(std::move(span));
    if (closed == id) break;
  }
}

void SpanTracer::emit(std::string_view name, Nanos sim_begin_ns,
                      Nanos sim_end_ns, const JsonDict& args) {
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = next_id_++;
  span.parent = stack_.empty() ? 0 : stack_.back().id;
  span.name = std::string(name);
  span.args_json = args.empty() ? std::string() : args.to_string();
  span.sim_begin_ns = sim_begin_ns;
  span.sim_end_ns = sim_end_ns;
  // A retroactive span still records when it was reported on the wall clock.
  span.wall_begin_ns = wall_now_ns();
  span.wall_end_ns = span.wall_begin_ns;
  done_.push_back(std::move(span));
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stack_.clear();
  done_.clear();
  next_id_ = 1;
}

void SpanTracer::write_chrome_trace(std::ostream& out, int pid) const {
  // trace_event's ts/dur are microseconds; the exact nanosecond stamps ride
  // in args so tooling can round-trip int64 precision (telemetry_test pins
  // this).
  out << "[";
  bool first = true;
  for (const Span& span : done_) write_trace_event(out, span, pid, first);
  out << "]\n";
}

void write_merged_chrome_trace(
    std::ostream& out,
    const std::vector<std::pair<int, const SpanTracer*>>& tracers) {
  out << "[";
  bool first = true;
  for (const auto& [pid, tracer] : tracers) {
    if (tracer == nullptr) continue;
    for (const Span& span : tracer->spans())
      write_trace_event(out, span, pid, first);
  }
  out << "]\n";
}

}  // namespace torpedo::telemetry
