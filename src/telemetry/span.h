// Hierarchical span tracer: the causal layer of the observability stack.
//
// Counters say *how much*, the JSONL trace says *what happened per round*;
// spans say *why time went where*. Every span carries a tracer-unique id, its
// parent's id (spans form a tree via an explicit open-span stack), optional
// structured args, and dual begin/end stamps: `sim_ns` from the virtual host
// clock and `wall_ns` from the real one. The writer emits Chrome
// `trace_event` "X" (complete) events keyed to the sim clock, so a campaign
// opens directly in Perfetto / chrome://tracing and nests exactly as the
// phases nested in simulated time.
//
// The tracer is installed process-wide with set_spans(); every probe site
// goes through ScopedSpan, which is a no-op (two loads, no allocation) while
// no tracer is installed — campaigns that don't pass --chrome-trace pay
// nothing.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/json.h"
#include "util/time.h"

namespace torpedo::telemetry {

// One completed span. `parent == 0` means root (no enclosing span).
struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::string args_json;  // rendered JsonDict; empty == no args
  Nanos sim_begin_ns = 0;
  Nanos sim_end_ns = 0;
  Nanos wall_begin_ns = 0;
  Nanos wall_end_ns = 0;

  Nanos sim_duration() const { return sim_end_ns - sim_begin_ns; }
  Nanos wall_duration() const { return wall_end_ns - wall_begin_ns; }
};

class SpanTracer {
 public:
  // Samples the simulated host clock at begin/end. Unset, sim stamps are 0
  // (wall stamps still work) — the wiring layer installs the host's clock.
  using SimClockFn = Nanos (*)(void*);
  void set_sim_clock(SimClockFn fn, void* ctx) {
    clock_fn_ = fn;
    clock_ctx_ = ctx;
  }

  // Opens a span whose parent is the currently-open span (stack top).
  // Returns the span id for end().
  std::uint64_t begin(std::string_view name);
  std::uint64_t begin(std::string_view name, const JsonDict& args);

  // Closes the span `id`. Children still open above it on the stack are
  // closed first (same end stamps), so a missed end() cannot corrupt the
  // tree.
  void end(std::uint64_t id);

  // Records a retroactive complete span (e.g. a per-executor window whose
  // begin predates the call). Parented to the currently-open span.
  void emit(std::string_view name, Nanos sim_begin_ns, Nanos sim_end_ns,
            const JsonDict& args);

  // Completed spans, in end order. Still-open spans are not included.
  // Single-threaded use only (post-run export).
  const std::vector<Span>& spans() const { return done_; }
  std::size_t open_depth() const;
  // Names of the currently-open spans, outermost first. Safe to call from
  // another thread (the watchdog logs this stack when a campaign stalls, to
  // show which phase the campaign thread is stuck in).
  std::vector<std::string> open_span_names() const;
  void clear();

  // Renders the Chrome trace_event JSON array: one "X" (complete) event per
  // span, `ts`/`dur` in sim microseconds, exact nanosecond stamps under
  // `args`. Loads in Perfetto and chrome://tracing as-is. Sharded campaigns
  // pass their shard index as `pid` so each shard gets its own process lane.
  void write_chrome_trace(std::ostream& out, int pid = 1) const;

 private:
  struct OpenSpan {
    std::uint64_t id = 0;
    std::string name;
    std::string args_json;
    Nanos sim_begin_ns = 0;
    Nanos wall_begin_ns = 0;
  };

  Nanos sim_now() const { return clock_fn_ ? clock_fn_(clock_ctx_) : 0; }
  std::uint64_t begin_impl(std::string_view name, std::string args_json);

  SimClockFn clock_fn_ = nullptr;
  void* clock_ctx_ = nullptr;
  // Guards stack_ (and next_id_) so the monitor thread can snapshot the open
  // stack while the campaign thread opens/closes spans. Uncontended in the
  // hot path; spans are per-round granularity, not per-execution.
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::vector<OpenSpan> stack_;
  std::vector<Span> done_;
};

// The tracer probes default to: a thread-local override when installed
// (sharded campaigns give each shard thread its own tracer), otherwise the
// process-wide tracer; nullptr == tracing disabled.
SpanTracer* spans();
void set_spans(SpanTracer* tracer);
// Installs `tracer` for the calling thread only (nullptr removes the
// override and falls back to the process-wide tracer).
void set_thread_spans(SpanTracer* tracer);

// Renders one Chrome trace_event array merging several tracers, each under
// its own pid lane (sharded campaigns merge trace.shard-k into one file).
void write_merged_chrome_trace(
    std::ostream& out,
    const std::vector<std::pair<int, const SpanTracer*>>& tracers);

// RAII probe: opens a span on the installed tracer (no-op when none).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) : tracer_(spans()) {
    if (tracer_) id_ = tracer_->begin(name);
  }
  ScopedSpan(std::string_view name, const JsonDict& args) : tracer_(spans()) {
    if (tracer_) id_ = tracer_->begin(name, args);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_) tracer_->end(id_);
  }

 private:
  SpanTracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
};

}  // namespace torpedo::telemetry
