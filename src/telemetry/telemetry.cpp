#include "telemetry/telemetry.h"

#include <bit>
#include <chrono>
#include <sstream>

namespace torpedo::telemetry {

Nanos wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Nanos steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Histogram -------------------------------------------------------------

void Histogram::record(std::uint64_t v) {
  // Multi-writer: shards record into shared histograms concurrently, so
  // count/sum/buckets use fetch_add and min/max a bounded CAS race. Readers
  // (the monitor thread) tolerate a value landing in count_ one scrape
  // before its bucket.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First recorder seeds min_; concurrent first records race benignly —
    // the CAS loops below repair whichever direction lost.
    min_.store(v, std::memory_order_relaxed);
  }
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  sum_.fetch_add(v, std::memory_order_relaxed);
  // Bucket k holds [2^(k-1), 2^k); bucket 0 holds the value 0.
  buckets_[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const double target = p / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    cumulative += buckets_[k].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      const std::uint64_t upper =
          k == 0 ? 0 : (k >= 64 ? max() : (std::uint64_t{1} << k) - 1);
      return std::min(std::max(upper, min()), max());
    }
  }
  return max();
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<std::uint64_t, kBuckets> out;
  for (std::size_t k = 0; k < kBuckets; ++k)
    out[k] = buckets_[k].load(std::memory_order_relaxed);
  return out;
}

JsonDict Histogram::to_json() const {
  JsonDict d;
  d.set("count", count())
      .set("sum", sum())
      .set("min", min())
      .set("max", max())
      .set("mean", mean())
      .set("p50", percentile(50))
      .set("p90", percentile(90))
      .set("p99", percentile(99));
  return d;
}

// --- Registry --------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.try_emplace(std::string(name)).first;
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.try_emplace(std::string(name)).first;
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.try_emplace(std::string(name)).first;
  return it->second;
}

const Counter* Registry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string Registry::to_json(Nanos sim_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonDict counters;
  for (const auto& [name, c] : counters_) counters.set(name, c.value());
  JsonDict gauges;
  for (const auto& [name, g] : gauges_) gauges.set(name, g.value());
  JsonDict histograms;
  for (const auto& [name, h] : histograms_)
    histograms.set_raw(name, h.to_json().to_string());

  JsonDict out;
  out.set("sim_ns", sim_ns)
      .set("wall_ns", wall_now_ns())
      .set_raw("counters", counters.to_string())
      .set_raw("gauges", gauges.to_string())
      .set_raw("histograms", histograms.to_string());
  return out.to_string();
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

// %g-style rendering that never emits a locale comma.
std::string render_double(double v) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << v;
  return out.str();
}

}  // namespace

std::string Registry::to_prometheus(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  auto line = [&out](const std::string& name, std::string_view labels,
                     const std::string& value) {
    out += name;
    out += labels;
    out += ' ';
    out += value;
    out += '\n';
  };
  auto header = [&out](const std::string& name, std::string_view help,
                       std::string_view type) {
    out += "# HELP " + name + " " + std::string(help) + "\n";
    out += "# TYPE " + name + " " + std::string(type) + "\n";
  };

  for (const auto& [name, c] : counters_) {
    const std::string full =
        std::string(prefix) + prometheus_name(name) + "_total";
    header(full, "torpedo counter " + name, "counter");
    line(full, "", std::to_string(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    const std::string full = std::string(prefix) + prometheus_name(name);
    header(full, "torpedo gauge " + name, "gauge");
    line(full, "", render_double(g.value()));
  }
  for (const auto& [name, h] : histograms_) {
    const std::string full = std::string(prefix) + prometheus_name(name);
    header(full, "torpedo histogram " + name, "histogram");
    const auto buckets = h.buckets();
    std::uint64_t cumulative = 0;
    std::size_t highest = 0;
    for (std::size_t k = 0; k < Histogram::kBuckets; ++k)
      if (buckets[k] > 0) highest = k;
    // Bucket k's inclusive upper edge: 2^k - 1 (bucket 0 holds the value 0).
    for (std::size_t k = 0; k <= highest && k < 63; ++k) {
      cumulative += buckets[k];
      const std::uint64_t le = k == 0 ? 0 : (std::uint64_t{1} << k) - 1;
      line(full + "_bucket", "{le=\"" + std::to_string(le) + "\"}",
           std::to_string(cumulative));
    }
    line(full + "_bucket", "{le=\"+Inf\"}", std::to_string(h.count()));
    line(full + "_sum", "", std::to_string(h.sum()));
    line(full + "_count", "", std::to_string(h.count()));
    // Percentile estimates ride as separate gauges (a histogram metric
    // cannot carry quantile series under the same name).
    for (const auto& [p, suffix] :
         {std::pair<double, const char*>{50, "_p50"},
          {90, "_p90"},
          {99, "_p99"}}) {
      const std::string q = full + suffix;
      header(q, "torpedo histogram percentile " + name, "gauge");
      line(q, "", std::to_string(h.percentile(p)));
    }
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& global() {
  static Registry registry;
  return registry;
}

}  // namespace torpedo::telemetry
