#include "telemetry/telemetry.h"

#include <bit>
#include <chrono>

namespace torpedo::telemetry {

Nanos wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Nanos steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Histogram -------------------------------------------------------------

void Histogram::record(std::uint64_t v) {
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
  // Bucket k holds [2^(k-1), 2^k); bucket 0 holds the value 0.
  ++buckets_[static_cast<std::size_t>(std::bit_width(v))];
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    cumulative += buckets_[k];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      const std::uint64_t upper =
          k == 0 ? 0 : (k >= 64 ? max_ : (std::uint64_t{1} << k) - 1);
      return std::min(std::max(upper, min()), max_);
    }
  }
  return max_;
}

JsonDict Histogram::to_json() const {
  JsonDict d;
  d.set("count", count_)
      .set("sum", sum_)
      .set("min", min())
      .set("max", max_)
      .set("mean", mean())
      .set("p50", percentile(50))
      .set("p90", percentile(90))
      .set("p99", percentile(99));
  return d;
}

// --- Registry --------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), Counter{}).first;
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  return it->second;
}

const Counter* Registry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string Registry::to_json(Nanos sim_ns) const {
  JsonDict counters;
  for (const auto& [name, c] : counters_) counters.set(name, c.value());
  JsonDict gauges;
  for (const auto& [name, g] : gauges_) gauges.set(name, g.value());
  JsonDict histograms;
  for (const auto& [name, h] : histograms_)
    histograms.set_raw(name, h.to_json().to_string());

  JsonDict out;
  out.set("sim_ns", sim_ns)
      .set("wall_ns", wall_now_ns())
      .set_raw("counters", counters.to_string())
      .set_raw("gauges", gauges.to_string())
      .set_raw("histograms", histograms.to_string());
  return out.to_string();
}

void Registry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& global() {
  static Registry registry;
  return registry;
}

}  // namespace torpedo::telemetry
