// Multi-process metrics aggregation.
//
// A fleet coordinator (fleet/coordinator.h) fronts N worker processes, each
// serving its own Prometheus exposition on an ephemeral port. Operators
// want one scrape target, not N: the coordinator scrapes every live worker
// and re-exposes the union with a {worker="k"} label on every sample, the
// process-level analogue of MonitorServer::add_shard's {shard="k"} series.
//
// aggregate_expositions() is pure text → text so it is testable without
// sockets: families (# HELP/# TYPE) are emitted once, in first-seen order,
// with every member sample re-labeled; samples keep their original labels
// after the injected worker label. Input order fixes output order — feed
// workers ascending and the merged exposition is deterministic for a given
// set of inputs.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace torpedo::telemetry {

// (worker id, full exposition text) -> one merged exposition.
std::string aggregate_expositions(
    const std::vector<std::pair<int, std::string>>& workers);

// The body of an http_get() response (everything after the blank line), or
// "" when the response is malformed/empty. The coordinator scrapes workers
// with http_get, which returns the raw response including headers.
std::string_view http_body(std::string_view response);

}  // namespace torpedo::telemetry
