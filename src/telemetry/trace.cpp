#include "telemetry/trace.h"

#include "telemetry/telemetry.h"

namespace torpedo::telemetry {

TraceSink::TraceSink(const std::filesystem::path& path)
    : file_(path, std::ios::out | std::ios::trunc) {
  if (file_.is_open()) out_ = &file_;
}

TraceSink::TraceSink(std::ostream& out) : out_(&out) {}

void TraceSink::write(std::string_view event, Nanos sim_ns,
                      const JsonDict& fields) {
  if (!out_) return;
  JsonDict record;
  record.set("event", event)
      .set("seq", seq_++)
      .set("sim_ns", sim_ns)
      .set("wall_ns", wall_now_ns())
      .update(fields);
  *out_ << record.to_string() << '\n';
  out_->flush();
}

}  // namespace torpedo::telemetry
