// The campaign round trace: a JSONL event sink.
//
// Each write() appends exactly one line — a JSON object carrying the event
// name, a monotonically increasing sequence number, and dual timestamps
// (`sim_ns` from the virtual host clock, `wall_ns` from the real one) —
// followed by the caller's fields. One "round" record per observed round is
// the contract the acceptance tooling checks; other layers (batch loop,
// finalize pass) append their own event kinds to the same file.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <string_view>

#include "telemetry/json.h"
#include "util/time.h"

namespace torpedo::telemetry {

class TraceSink {
 public:
  // Truncates and writes to `path`. Check ok() before relying on output.
  explicit TraceSink(const std::filesystem::path& path);
  // Writes to a caller-owned stream (tests).
  explicit TraceSink(std::ostream& out);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool ok() const { return out_ != nullptr && out_->good(); }

  // Appends one record: {"event":...,"seq":N,"sim_ns":...,"wall_ns":...,
  // <fields...>}.
  void write(std::string_view event, Nanos sim_ns, const JsonDict& fields);

  std::uint64_t records() const { return seq_; }

 private:
  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::uint64_t seq_ = 0;
};

}  // namespace torpedo::telemetry
