#include "telemetry/aggregate.h"

#include <map>

namespace torpedo::telemetry {

namespace {

// Metric name of one sample line: everything before the label set / value.
std::string_view sample_name(std::string_view line) {
  const std::size_t brace = line.find('{');
  const std::size_t space = line.find(' ');
  return line.substr(0, std::min(brace, space));
}

// "# HELP name text" / "# TYPE name kind" -> name.
std::string_view comment_name(std::string_view line) {
  // line starts with "# HELP " or "# TYPE " (7 chars).
  std::string_view rest = line.substr(7);
  const std::size_t space = rest.find(' ');
  return rest.substr(0, space);
}

std::string relabel(std::string_view line, int worker) {
  const std::string tag = "worker=\"" + std::to_string(worker) + "\"";
  const std::size_t brace = line.find('{');
  const std::size_t space = line.find(' ');
  if (brace != std::string_view::npos && brace < space) {
    // name{labels} value -> name{worker="k",labels} value
    std::string out(line.substr(0, brace + 1));
    out += tag;
    if (line[brace + 1] != '}') out += ",";
    out += line.substr(brace + 1);
    return out;
  }
  // name value -> name{worker="k"} value
  const std::string_view name = sample_name(line);
  std::string out(name);
  out += "{" + tag + "}";
  out += line.substr(name.size());
  return out;
}

}  // namespace

std::string aggregate_expositions(
    const std::vector<std::pair<int, std::string>>& workers) {
  struct Family {
    std::string help;  // full "# HELP ..." line (first seen)
    std::string type;  // full "# TYPE ..." line (first seen)
    std::vector<std::string> samples;
  };
  std::vector<std::string> order;  // family names, first-seen
  std::map<std::string, Family, std::less<>> families;

  auto family = [&](std::string_view name) -> Family& {
    auto it = families.find(name);
    if (it == families.end()) {
      order.emplace_back(name);
      it = families.emplace(std::string(name), Family{}).first;
    }
    return it->second;
  };

  for (const auto& [worker, text] : workers) {
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string_view line(text.data() + pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line.rfind("# HELP ", 0) == 0) {
        Family& f = family(comment_name(line));
        if (f.help.empty()) f.help = std::string(line);
      } else if (line.rfind("# TYPE ", 0) == 0) {
        Family& f = family(comment_name(line));
        if (f.type.empty()) f.type = std::string(line);
      } else if (line[0] == '#') {
        // Other comments: drop (nothing in-repo emits any).
      } else {
        // A sample whose family never had a TYPE line still aggregates,
        // keyed by its own metric name.
        family(sample_name(line)).samples.push_back(relabel(line, worker));
      }
    }
  }

  std::string out;
  for (const std::string& name : order) {
    const Family& f = families.find(name)->second;
    if (!f.help.empty()) out += f.help + "\n";
    if (!f.type.empty()) out += f.type + "\n";
    for (const std::string& s : f.samples) out += s + "\n";
  }
  return out;
}

std::string_view http_body(std::string_view response) {
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string_view::npos) return {};
  return response.substr(split + 4);
}

}  // namespace torpedo::telemetry
