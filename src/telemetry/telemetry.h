// Campaign telemetry: a lightweight registry of named counters, gauges, and
// latency histograms.
//
// The paper's whole contribution is a measurement-driven feedback loop, so
// the reproduction instruments its own hot path the way a production fuzzer
// would (execs/sec and feedback-acceptance rates are the standard health
// signals of a kernel fuzzer). Probes hold direct Counter*/Histogram*
// pointers resolved once at construction — the hot loop never does a name
// lookup. Exports are dual-stamped: `sim_ns` (virtual host time) and
// `wall_ns` (real time), so a trace can be correlated against both clocks.
//
// Threading model: many writers, many readers. Sharded campaigns
// (`core/sharded.h`) run K campaign stacks concurrently against the same
// process-global registry, and the live monitor (`telemetry/monitor.h`)
// scrapes from a background thread. Instrument values are relaxed
// std::atomics updated with fetch_add (a single lock-free RMW — `lock xadd`
// on x86 — correct under any number of concurrent shards). Registry name
// lookup takes a mutex, but probes resolve pointers once, so the hot loop
// never touches it.
//
// Instruments registered here are process-global by default (see global());
// consumers that need per-run numbers snapshot values before/after and take
// deltas, or use their own Registry instance.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "telemetry/json.h"
#include "util/time.h"

namespace torpedo::telemetry {

// Wall-clock nanoseconds since the Unix epoch (for stamping artifacts).
Nanos wall_now_ns();
// Monotonic nanoseconds (for measuring durations).
Nanos steady_now_ns();

class Counter {
 public:
  // Multi-writer safe: concurrent shards share process-global counters, so
  // increments must be a single RMW, not load+store.
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Log2-bucketed histogram for latencies and sizes: O(1) record, ~2x relative
// error on percentile estimates, no allocation. Multi-writer like Counter
// (fetch_add for count/sum/buckets, CAS loops for min/max); a concurrent
// reader may see a value recorded in count_ before it lands in sum_ or a
// bucket — each field is individually coherent, which is all a monitoring
// scrape needs.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const {
    return count() ? min_.load(std::memory_order_relaxed) : 0;
  }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t c = count();
    return c ? static_cast<double>(sum()) / static_cast<double>(c) : 0.0;
  }
  // Upper bound of the bucket holding the p-th percentile (p in [0, 100]),
  // clamped to the observed max.
  std::uint64_t percentile(double p) const;
  // Snapshot of the bucket counts (copy: the live array is atomic).
  std::array<std::uint64_t, kBuckets> buckets() const;

  // Renders {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,...}.
  JsonDict to_json() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{0};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

// Name-keyed instrument registry. References returned by counter()/gauge()/
// histogram() stay valid for the registry's lifetime (node-based storage).
// Lookup/registration and whole-registry exports are mutex-guarded so the
// monitor thread can scrape while the campaign thread registers
// late-arriving instruments (e.g. finalize-pass counters).
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // nullptr when the instrument was never registered.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // Direct map access for single-threaded consumers (tests, post-run
  // exports). Not safe against concurrent registration — the monitor thread
  // uses to_json()/to_prometheus() instead.
  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // Full dump, dual-stamped; instrument names sort deterministically.
  std::string to_json(Nanos sim_ns) const;

  // Prometheus text exposition (version 0.0.4): every counter as
  // `<prefix><name>_total`, every gauge as `<prefix><name>`, every histogram
  // as `_bucket{le=...}`/`_sum`/`_count` plus `_p50`/`_p90`/`_p99` gauges.
  // Dots and other illegal characters in instrument names become '_'.
  std::string to_prometheus(std::string_view prefix = "torpedo_") const;

  // Drops every instrument. Existing Counter*/Histogram* pointers dangle:
  // only call between campaigns, never while probes are live.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Sanitizes an instrument name for Prometheus: [a-zA-Z0-9_:] pass through,
// everything else becomes '_'.
std::string prometheus_name(std::string_view name);

// The process-wide registry every built-in probe defaults to.
Registry& global();

// Records wall-clock microseconds into a histogram on scope exit.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram& histogram)
      : histogram_(histogram), start_(steady_now_ns()) {}
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;
  ~ScopedTimerUs() {
    histogram_.record(
        static_cast<std::uint64_t>((steady_now_ns() - start_) / 1000));
  }

 private:
  Histogram& histogram_;
  Nanos start_;
};

}  // namespace torpedo::telemetry
