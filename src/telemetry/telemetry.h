// Campaign telemetry: a lightweight registry of named counters, gauges, and
// latency histograms.
//
// The paper's whole contribution is a measurement-driven feedback loop, so
// the reproduction instruments its own hot path the way a production fuzzer
// would (execs/sec and feedback-acceptance rates are the standard health
// signals of a kernel fuzzer). Probes hold direct Counter*/Histogram*
// pointers resolved once at construction — the hot loop never does a name
// lookup. Exports are dual-stamped: `sim_ns` (virtual host time) and
// `wall_ns` (real time), so a trace can be correlated against both clocks.
//
// Instruments registered here are process-global by default (see global());
// consumers that need per-run numbers snapshot values before/after and take
// deltas, or use their own Registry instance.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "telemetry/json.h"
#include "util/time.h"

namespace torpedo::telemetry {

// Wall-clock nanoseconds since the Unix epoch (for stamping artifacts).
Nanos wall_now_ns();
// Monotonic nanoseconds (for measuring durations).
Nanos steady_now_ns();

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Log2-bucketed histogram for latencies and sizes: O(1) record, ~2x relative
// error on percentile estimates, no allocation.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  // Upper bound of the bucket holding the p-th percentile (p in [0, 100]),
  // clamped to the observed max.
  std::uint64_t percentile(double p) const;
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  // Renders {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,...}.
  JsonDict to_json() const;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

// Name-keyed instrument registry. References returned by counter()/gauge()/
// histogram() stay valid for the registry's lifetime (node-based storage).
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // nullptr when the instrument was never registered.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // Full dump, dual-stamped; instrument names sort deterministically.
  std::string to_json(Nanos sim_ns) const;

  // Drops every instrument. Existing Counter*/Histogram* pointers dangle:
  // only call between campaigns, never while probes are live.
  void reset();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// The process-wide registry every built-in probe defaults to.
Registry& global();

// Records wall-clock microseconds into a histogram on scope exit.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram& histogram)
      : histogram_(histogram), start_(steady_now_ns()) {}
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;
  ~ScopedTimerUs() {
    histogram_.record(
        static_cast<std::uint64_t>((steady_now_ns() - start_) / 1000));
  }

 private:
  Histogram& histogram_;
  Nanos start_;
};

}  // namespace torpedo::telemetry
