// The program IR: a sequence of system calls with resource-typed arguments.
//
// Mirrors syzkaller's intermediate representation (§2.6.1): calls can pass
// pointers to dynamic memory (modeled as buffers), save results for reuse
// (resource references), and serialize to/from a text format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "prog/desc.h"

namespace torpedo::prog {

struct ArgValue {
  enum class Kind { kLiteral, kResult, kString };
  Kind kind = Kind::kLiteral;
  std::uint64_t literal = 0;
  int result_of = -1;  // index of the producing call in the program
  std::string str;

  static ArgValue lit(std::uint64_t v) {
    ArgValue a;
    a.literal = v;
    return a;
  }
  static ArgValue result(int call_index) {
    ArgValue a;
    a.kind = Kind::kResult;
    a.result_of = call_index;
    return a;
  }
  static ArgValue text(std::string s) {
    ArgValue a;
    a.kind = Kind::kString;
    a.str = std::move(s);
    return a;
  }

  friend bool operator==(const ArgValue&, const ArgValue&) = default;
};

struct Call {
  const SyscallDesc* desc = nullptr;
  std::vector<ArgValue> args;

  friend bool operator==(const Call&, const Call&) = default;
};

class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Call> calls) : calls_(std::move(calls)) {}

  std::vector<Call>& calls() { return calls_; }
  const std::vector<Call>& calls() const { return calls_; }
  std::size_t size() const { return calls_.size(); }
  bool empty() const { return calls_.empty(); }

  // Structural validity: arg counts match the descriptions; every resource
  // reference points to an earlier call producing a compatible resource.
  bool valid() const;

  // Repairs invalid resource references after mutation: rebinds each to the
  // nearest earlier compatible producer, or degrades it to a literal bad fd.
  void fixup();

  // Drops every call whose syscall name appears in `names`; then fixup().
  void filter_calls(const std::vector<std::string>& names);

  // Text serialization (syzkaller-style: `r0 = socket(0x10, 0x3, 0x9)`).
  std::string serialize() const;
  static std::optional<Program> parse(const std::string& text);

  // Stable content hash (used for corpus dedup).
  std::uint64_t hash() const;

  friend bool operator==(const Program&, const Program&) = default;

 private:
  std::vector<Call> calls_;
};

}  // namespace torpedo::prog
