// Program generation: fresh random programs and random argument values.
#pragma once

#include <string>
#include <vector>

#include "prog/program.h"
#include "util/rng.h"

namespace torpedo::prog {

struct GenConfig {
  std::size_t min_calls = 1;
  std::size_t max_calls = 8;
  // Probability (percent) that a resource argument references an earlier
  // producing call instead of a junk literal.
  int resource_ref_pct = 80;
  // Syscall names never generated (the runtime denylist of §4.1.2).
  std::vector<std::string> denylist;
};

class Generator {
 public:
  explicit Generator(Rng rng, GenConfig config = {})
      : rng_(rng), config_(std::move(config)) {}

  // A fresh random program.
  Program generate();

  // A random value for one argument slot; `producer_count` limits resource
  // references to earlier calls (pass the call's index).
  ArgValue random_arg(const Program& program, std::size_t call_index,
                      const ArgDesc& desc);

  // Appends a call biased toward interacting with resources already present
  // (syzkaller's "bias score" add-call operation).
  void insert_biased_call(Program& program);

  const GenConfig& config() const { return config_; }
  void set_denylist(std::vector<std::string> names) {
    config_.denylist = std::move(names);
  }
  Rng& rng() { return rng_; }

 private:
  const SyscallDesc* pick_syscall();
  bool denied(const SyscallDesc& desc) const;

  Rng rng_;
  GenConfig config_;
};

// Random path / buffer pools used by generation and mutation.
std::string random_path(Rng& rng);
std::string random_buffer(Rng& rng);

}  // namespace torpedo::prog
