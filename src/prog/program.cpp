#include "prog/program.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace torpedo::prog {

namespace {

// Result numbering: the k-th producing call is named r<k>.
std::vector<int> result_numbers(const std::vector<Call>& calls) {
  std::vector<int> numbers(calls.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < calls.size(); ++i)
    if (!calls[i].desc->produces.empty()) numbers[i] = next++;
  return numbers;
}

std::string quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\\' || c == '\'') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '\'';
  return out;
}

std::optional<std::string> unquote(std::string_view s) {
  if (s.size() < 2 || s.front() != '\'' || s.back() != '\'')
    return std::nullopt;
  std::string out;
  for (std::size_t i = 1; i + 1 < s.size(); ++i) {
    if (s[i] == '\\' && i + 2 < s.size()) {
      ++i;
      if (s[i] == 'n') {
        out += '\n';
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

// Splits a top-level argument list on commas (quotes are respected).
std::vector<std::string_view> split_args(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  bool in_quote = false;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && s[i] == '\'' && (i == 0 || s[i - 1] != '\\'))
      in_quote = !in_quote;
    if (i == s.size() || (s[i] == ',' && !in_quote)) {
      std::string_view part = trim(s.substr(start, i - start));
      if (!part.empty()) out.push_back(part);
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

bool Program::valid() const {
  for (std::size_t i = 0; i < calls_.size(); ++i) {
    const Call& call = calls_[i];
    if (!call.desc) return false;
    if (call.args.size() != call.desc->args.size()) return false;
    for (std::size_t a = 0; a < call.args.size(); ++a) {
      const ArgValue& value = call.args[a];
      if (value.kind != ArgValue::Kind::kResult) continue;
      if (value.result_of < 0 ||
          static_cast<std::size_t>(value.result_of) >= i)
        return false;
      const SyscallDesc* producer = calls_[static_cast<std::size_t>(
          value.result_of)].desc;
      if (producer->produces.empty()) return false;
      if (call.desc->args[a].kind == ArgKind::kResource &&
          !resource_compatible(call.desc->args[a].resource,
                               producer->produces))
        return false;
    }
  }
  return true;
}

void Program::fixup() {
  for (std::size_t i = 0; i < calls_.size(); ++i) {
    Call& call = calls_[i];
    TORPEDO_CHECK(call.desc != nullptr);
    call.args.resize(call.desc->args.size());
    for (std::size_t a = 0; a < call.args.size(); ++a) {
      ArgValue& value = call.args[a];
      const ArgDesc& desc = call.desc->args[a];
      if (value.kind != ArgValue::Kind::kResult) continue;
      const std::string& want = desc.kind == ArgKind::kResource
                                    ? desc.resource
                                    : std::string("fd");
      auto ok = [&](int idx) {
        return idx >= 0 && static_cast<std::size_t>(idx) < i &&
               !calls_[static_cast<std::size_t>(idx)].desc->produces.empty() &&
               resource_compatible(
                   want, calls_[static_cast<std::size_t>(idx)].desc->produces);
      };
      if (ok(value.result_of)) continue;
      // Rebind to the nearest earlier compatible producer.
      int found = -1;
      for (int j = static_cast<int>(i) - 1; j >= 0; --j) {
        if (ok(j)) {
          found = j;
          break;
        }
      }
      if (found >= 0)
        value = ArgValue::result(found);
      else
        value = ArgValue::lit(0xffffffffffffffffULL);  // a guaranteed-bad fd
    }
  }
}

void Program::filter_calls(const std::vector<std::string>& names) {
  auto banned = [&](const Call& c) {
    return std::find(names.begin(), names.end(), c.desc->name) != names.end();
  };
  // Removing calls shifts indices: remap result references as we compact.
  std::vector<int> remap(calls_.size(), -1);
  std::vector<Call> kept;
  for (std::size_t i = 0; i < calls_.size(); ++i) {
    if (banned(calls_[i])) continue;
    remap[i] = static_cast<int>(kept.size());
    kept.push_back(calls_[i]);
  }
  for (Call& call : kept)
    for (ArgValue& value : call.args)
      if (value.kind == ArgValue::Kind::kResult)
        value.result_of = value.result_of >= 0 &&
                                  static_cast<std::size_t>(value.result_of) <
                                      remap.size()
                              ? remap[static_cast<std::size_t>(value.result_of)]
                              : -1;
  calls_ = std::move(kept);
  fixup();
}

std::string Program::serialize() const {
  const std::vector<int> numbers = result_numbers(calls_);
  std::string out;
  for (std::size_t i = 0; i < calls_.size(); ++i) {
    const Call& call = calls_[i];
    if (numbers[i] >= 0) {
      out += "r" + std::to_string(numbers[i]) + " = ";
    }
    out += call.desc->name;
    out += '(';
    for (std::size_t a = 0; a < call.args.size(); ++a) {
      if (a > 0) out += ", ";
      const ArgValue& value = call.args[a];
      switch (value.kind) {
        case ArgValue::Kind::kLiteral:
          out += hex(value.literal);
          break;
        case ArgValue::Kind::kResult:
          out += "r" + std::to_string(
                           numbers[static_cast<std::size_t>(value.result_of)]);
          break;
        case ArgValue::Kind::kString:
          out += quote(value.str);
          break;
      }
    }
    out += ")\n";
  }
  return out;
}

std::optional<Program> Program::parse(const std::string& text) {
  const SyscallTable& table = SyscallTable::instance();
  std::vector<Call> calls;
  std::vector<int> result_to_call;  // rK -> call index

  for (std::string_view raw_line : split(text, '\n')) {
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    bool produces_named = false;
    if (line.front() == 'r') {
      auto eq = line.find('=');
      auto paren = line.find('(');
      if (eq != std::string_view::npos && eq < paren) {
        std::string_view label = trim(line.substr(0, eq));
        auto num = parse_u64(label.substr(1));
        if (!num || *num != result_to_call.size()) return std::nullopt;
        produces_named = true;
        line = trim(line.substr(eq + 1));
      }
    }

    auto open = line.find('(');
    if (open == std::string_view::npos || line.back() != ')')
      return std::nullopt;
    std::string_view name = trim(line.substr(0, open));
    const SyscallDesc* desc = table.by_name(name);
    if (!desc) return std::nullopt;
    if (produces_named && desc->produces.empty()) return std::nullopt;

    Call call;
    call.desc = desc;
    std::string_view arg_text = line.substr(open + 1,
                                            line.size() - open - 2);
    for (std::string_view part : split_args(arg_text)) {
      if (part.front() == '\'') {
        auto s = unquote(part);
        if (!s) return std::nullopt;
        call.args.push_back(ArgValue::text(std::move(*s)));
      } else if (part.front() == 'r' && part.size() > 1 &&
                 part[1] >= '0' && part[1] <= '9') {
        auto num = parse_u64(part.substr(1));
        if (!num || *num >= result_to_call.size()) return std::nullopt;
        call.args.push_back(
            ArgValue::result(result_to_call[static_cast<std::size_t>(*num)]));
      } else {
        auto v = parse_u64(part);
        if (!v) return std::nullopt;
        call.args.push_back(ArgValue::lit(*v));
      }
    }
    if (call.args.size() != desc->args.size()) return std::nullopt;
    if (produces_named)
      result_to_call.push_back(static_cast<int>(calls.size()));
    else if (!desc->produces.empty())
      result_to_call.push_back(static_cast<int>(calls.size()));
    calls.push_back(std::move(call));
  }

  Program program(std::move(calls));
  if (!program.valid()) return std::nullopt;
  return program;
}

std::uint64_t Program::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (const Call& call : calls_) {
    mix(static_cast<std::uint64_t>(call.desc->nr));
    for (char c : call.desc->name) mix(static_cast<std::uint64_t>(c));
    for (const ArgValue& value : call.args) {
      mix(static_cast<std::uint64_t>(value.kind));
      mix(value.literal);
      mix(static_cast<std::uint64_t>(value.result_of));
      for (char c : value.str) mix(static_cast<std::uint64_t>(c));
    }
  }
  return h;
}

}  // namespace torpedo::prog
