#include "prog/generate.h"

#include <algorithm>

#include "util/check.h"

namespace torpedo::prog {

namespace {
const char* const kPathPool[] = {
    "mntpoint/tmp",
    "testdir_1",
    "/lib/x86_64-linux-gnu/libc.so.6",
    "/proc/sys/fs/mqueue/msg_max",
    "/dev/null",
    "/etc/passwd",
    "getxattr01testfile",
    "test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop",
    "newfile_0",
};

const char* const kBufferPool[] = {
    "",
    "47530",
    "this is a test value",
    "system.posix_acl_access",
    "testing audit system",
    "\x24\x00\x00\x00\x60\x04\x05\x00",
};
}  // namespace

std::string random_path(Rng& rng) {
  if (rng.chance(1, 8))
    return "gen_" + std::to_string(rng.below(64));  // fresh name
  return kPathPool[rng.below(std::size(kPathPool))];
}

std::string random_buffer(Rng& rng) {
  return kBufferPool[rng.below(std::size(kBufferPool))];
}

bool Generator::denied(const SyscallDesc& desc) const {
  return std::find(config_.denylist.begin(), config_.denylist.end(),
                   desc.name) != config_.denylist.end();
}

const SyscallDesc* Generator::pick_syscall() {
  const auto all = SyscallTable::instance().all();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const SyscallDesc* desc = &all[rng_.below(all.size())];
    if (!denied(*desc)) return desc;
  }
  return &all[0];
}

ArgValue Generator::random_arg(const Program& program, std::size_t call_index,
                               const ArgDesc& desc) {
  switch (desc.kind) {
    case ArgKind::kConst:
      return ArgValue::lit(desc.const_val);
    case ArgKind::kPath:
      return ArgValue::text(random_path(rng_));
    case ArgKind::kBuffer:
      return ArgValue::text(random_buffer(rng_));
    case ArgKind::kLen: {
      static constexpr std::uint64_t kSizes[] = {0, 1, 7, 0x15, 0x24, 0x1000,
                                                 0x4000, 1 << 20};
      return ArgValue::lit(kSizes[rng_.below(std::size(kSizes))]);
    }
    case ArgKind::kIntFlags: {
      if (desc.flags.empty() || rng_.chance(1, 12))
        return ArgValue::lit(rng_.next());  // garbage bits
      // "Certain preference is given to known interesting arguments like
      // NULL or a bitfield of all 1s" (§2.6.1).
      if (rng_.chance(1, 16)) return ArgValue::lit(~0ULL);
      if (rng_.chance(1, 10)) {
        std::uint64_t all = 0;
        for (std::uint64_t bit : desc.flags) all |= bit;
        return ArgValue::lit(all);
      }
      std::uint64_t v = 0;
      const std::size_t n = rng_.below(std::min<std::size_t>(
                                3, desc.flags.size())) + 1;
      for (std::size_t i = 0; i < n; ++i)
        v |= desc.flags[rng_.below(desc.flags.size())];
      return ArgValue::lit(v);
    }
    case ArgKind::kIntPlain: {
      // Syzkaller gives "certain preference to known interesting arguments
      // like NULL or a bitfield of all 1s".
      if (!desc.specials.empty() && rng_.chance(3, 5))
        return ArgValue::lit(desc.specials[rng_.below(desc.specials.size())]);
      if (rng_.chance(1, 12)) return ArgValue::lit(0);
      if (rng_.chance(1, 12)) return ArgValue::lit(~0ULL);
      if (desc.max >= desc.min)
        return ArgValue::lit(
            static_cast<std::uint64_t>(rng_.range(
                static_cast<std::int64_t>(desc.min),
                static_cast<std::int64_t>(
                    std::min(desc.max, static_cast<std::uint64_t>(
                                           0x7fffffffffffffffULL))))));
      return ArgValue::lit(rng_.next());
    }
    case ArgKind::kResource: {
      if (rng_.chance(static_cast<std::uint64_t>(config_.resource_ref_pct),
                      100)) {
        // Find earlier producers of a compatible kind.
        std::vector<int> producers;
        for (std::size_t j = 0; j < call_index && j < program.size(); ++j) {
          const SyscallDesc* d = program.calls()[j].desc;
          if (!d->produces.empty() &&
              resource_compatible(desc.resource, d->produces))
            producers.push_back(static_cast<int>(j));
        }
        if (!producers.empty())
          return ArgValue::result(producers[rng_.below(producers.size())]);
      }
      return ArgValue::lit(0xffffffffffffffffULL);
    }
  }
  return ArgValue::lit(0);
}

Program Generator::generate() {
  const std::size_t n =
      config_.min_calls +
      rng_.below(config_.max_calls - config_.min_calls + 1);
  Program program;
  for (std::size_t i = 0; i < n; ++i) {
    const SyscallDesc* desc = pick_syscall();
    Call call;
    call.desc = desc;
    for (const ArgDesc& arg : desc->args)
      call.args.push_back(random_arg(program, program.size(), arg));
    program.calls().push_back(std::move(call));
  }
  program.fixup();
  TORPEDO_CHECK(program.valid());
  return program;
}

void Generator::insert_biased_call(Program& program) {
  // Collect the resource kinds live in the program, then prefer a syscall
  // that consumes one of them ("likely to interact with the calls already
  // present").
  std::vector<std::string> live;
  for (const Call& call : program.calls())
    if (!call.desc->produces.empty()) live.push_back(call.desc->produces);

  const SyscallDesc* chosen = nullptr;
  if (!live.empty() && rng_.chance(7, 10)) {
    std::vector<const SyscallDesc*> consumers;
    for (const SyscallDesc& d : SyscallTable::instance().all()) {
      if (denied(d)) continue;
      for (const ArgDesc& a : d.args) {
        if (a.kind != ArgKind::kResource) continue;
        for (const std::string& kind : live) {
          if (resource_compatible(a.resource, kind)) {
            consumers.push_back(&d);
            break;
          }
        }
      }
    }
    if (!consumers.empty()) chosen = consumers[rng_.below(consumers.size())];
  }
  if (!chosen) chosen = pick_syscall();

  const std::size_t pos = rng_.below(program.size() + 1);
  Call call;
  call.desc = chosen;
  for (const ArgDesc& arg : chosen->args)
    call.args.push_back(random_arg(program, pos, arg));
  program.calls().insert(
      program.calls().begin() + static_cast<std::ptrdiff_t>(pos),
      std::move(call));
  // Insertion shifts later indices: references at/after pos to calls at/after
  // pos must slide by one.
  for (std::size_t i = pos + 1; i < program.size(); ++i)
    for (ArgValue& value : program.calls()[i].args)
      if (value.kind == ArgValue::Kind::kResult &&
          value.result_of >= static_cast<int>(pos))
        ++value.result_of;
  program.fixup();
}

}  // namespace torpedo::prog
