// Genetic mutation operators over programs.
//
// The four operations syzkaller's algorithm uses (§2.6.1): splice two
// programs, add a biased call, remove a call, and mutate one argument.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "prog/generate.h"
#include "prog/program.h"

namespace torpedo::prog {

enum class MutationOp { kSplice, kInsertCall, kRemoveCall, kMutateArg };

struct MutateConfig {
  std::size_t max_calls = 12;
  // Relative weights of the four operations. The paper notes these constants
  // "are not grounded in any legitimate research" — they are exposed here so
  // the ablation bench can sweep them (§5.3).
  double splice_weight = 1.0;
  double insert_weight = 3.0;
  double remove_weight = 1.0;
  double mutate_arg_weight = 5.0;
};

class Mutator {
 public:
  Mutator(Generator& generator, MutateConfig config = {})
      : generator_(generator), config_(config) {}

  // Applies a random burst of operations (syzkaller keeps mutating until a
  // one-in-three stop roll succeeds). `corpus` supplies splice donors (may
  // be empty, which disables splicing). Returns the last operation applied.
  MutationOp mutate(Program& program, std::span<const Program> corpus);
  // Pointer-donor variant (the Corpus hands out pointers into its entries so
  // programs are stored once; see Corpus::donors()).
  MutationOp mutate(Program& program,
                    std::span<const Program* const> corpus);

  // Applies exactly one random operation.
  MutationOp mutate_once(Program& program, std::span<const Program> corpus);
  MutationOp mutate_once(Program& program,
                         std::span<const Program* const> corpus);

  // Applies a specific operation (tests and ablations).
  void splice(Program& program, const Program& donor);
  void insert_call(Program& program);
  void remove_call(Program& program);
  void mutate_arg(Program& program);

  // Introspection of the most recent mutate()/mutate_once() burst: every
  // operation applied, in order, and the content hash of the last splice
  // donor used (0 when the burst did not splice). Valid until the next
  // mutate call on this Mutator.
  std::span<const MutationOp> last_ops() const { return last_ops_; }
  std::uint64_t last_splice_donor_hash() const { return last_donor_hash_; }

  const MutateConfig& config() const { return config_; }
  void set_config(const MutateConfig& config) { config_ = config; }

 private:
  // Shared body of mutate_once; records into last_ops_/last_donor_hash_.
  MutationOp apply_once(Program& program, std::span<const Program> corpus);
  MutationOp apply_once(Program& program,
                        std::span<const Program* const> corpus);

  Generator& generator_;
  MutateConfig config_;
  std::vector<MutationOp> last_ops_;
  std::uint64_t last_donor_hash_ = 0;
};

}  // namespace torpedo::prog
