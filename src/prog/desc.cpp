#include "prog/desc.h"

#include "kernel/syscalls.h"
#include "util/check.h"

namespace torpedo::prog {

using kernel::Sysno;

bool resource_compatible(std::string_view want, std::string_view have) {
  if (want == have) return true;
  // Every specialized descriptor is still a file descriptor.
  if (want == "fd")
    return have == "sock" || have == "inotifyfd" || have == "epollfd" ||
           have == "eventfd" || have == "memfd" || have == "mqd";
  return false;
}

namespace {

ArgDesc plain(std::string name, std::uint64_t min, std::uint64_t max,
              std::vector<std::uint64_t> specials = {}) {
  ArgDesc a;
  a.kind = ArgKind::kIntPlain;
  a.name = std::move(name);
  a.min = min;
  a.max = max;
  a.specials = std::move(specials);
  return a;
}

ArgDesc flags(std::string name, std::vector<std::uint64_t> bits) {
  ArgDesc a;
  a.kind = ArgKind::kIntFlags;
  a.name = std::move(name);
  a.flags = std::move(bits);
  return a;
}

ArgDesc res(std::string name, std::string kind) {
  ArgDesc a;
  a.kind = ArgKind::kResource;
  a.name = std::move(name);
  a.resource = std::move(kind);
  return a;
}

ArgDesc path(std::string name = "path") {
  ArgDesc a;
  a.kind = ArgKind::kPath;
  a.name = std::move(name);
  return a;
}

ArgDesc buffer(std::string name = "buf") {
  ArgDesc a;
  a.kind = ArgKind::kBuffer;
  a.name = std::move(name);
  return a;
}

ArgDesc len(std::string name = "len") {
  ArgDesc a;
  a.kind = ArgKind::kLen;
  a.name = std::move(name);
  a.max = 1 << 20;
  return a;
}

ArgDesc constant(std::string name, std::uint64_t v) {
  ArgDesc a;
  a.kind = ArgKind::kConst;
  a.name = std::move(name);
  a.const_val = v;
  return a;
}

SyscallDesc sc(int nr, std::string name, std::vector<ArgDesc> args,
               std::string produces, std::string interface,
               bool blocks = false) {
  SyscallDesc d;
  d.nr = nr;
  d.name = std::move(name);
  d.args = std::move(args);
  d.produces = std::move(produces);
  d.interface = std::move(interface);
  d.blocks = blocks;
  return d;
}

// Common flag vocabularies.
const std::vector<std::uint64_t> kOpenFlags = {
    0x1,      0x2,      0x40,     0x80,     0x200,    0x400,
    0x800,    0x1000,   0x4000,   0x10000,  0x40000,  0x80000,
    0x100000, 0x200000, 0x400000,
    // The O_TMPFILE-style composite (__O_TMPFILE | O_DIRECTORY analogue);
    // a known-interesting value fuzzers seed their flag vocabulary with.
    0x600000};
const std::vector<std::uint64_t> kMmapProt = {0x1, 0x2, 0x4};
const std::vector<std::uint64_t> kMmapFlags = {0x1,    0x2,    0x10,
                                               0x20,   0x100,  0x1000,
                                               0x4000, 0x10000, 0x20000};

}  // namespace

SyscallTable::SyscallTable() {
  auto& d = descs_;

  // --- file interface -----------------------------------------------------
  d.push_back(sc(Sysno::kOpen, "open",
                 {path(), flags("flags", kOpenFlags),
                  plain("mode", 0, 0777, {0, 0x20, 0124, 0x1ff})},
                 "fd", "file"));
  d.push_back(sc(Sysno::kCreat, "creat",
                 {path(), plain("mode", 0, 07777, {0x124, 0x1a4, 0x1ff})},
                 "fd", "file"));
  d.push_back(sc(Sysno::kClose, "close", {res("fd", "fd")}, "", "file"));
  d.push_back(sc(Sysno::kRead, "read",
                 {res("fd", "fd"), buffer(), len()}, "", "file"));
  d.push_back(sc(Sysno::kWrite, "write",
                 {res("fd", "fd"), buffer(), len()}, "", "file"));
  d.push_back(sc(Sysno::kLseek, "lseek",
                 {res("fd", "fd"),
                  plain("offset", 0, ~0ULL, {0, 1, ~0ULL, ~0ULL - 4}),
                  plain("whence", 0, 4, {0, 1, 2})},
                 "", "file"));
  d.push_back(sc(Sysno::kDup, "dup", {res("oldfd", "fd")}, "fd", "file"));
  d.push_back(sc(Sysno::kStat, "stat", {path(), buffer("statbuf")}, "",
                 "file"));
  d.push_back(sc(Sysno::kFstat, "fstat", {res("fd", "fd"), buffer("statbuf")},
                 "", "file"));
  d.push_back(sc(Sysno::kAccess, "access",
                 {path(), plain("mode", 0, 7, {0, 4})}, "", "file"));
  d.push_back(sc(Sysno::kReadlink, "readlink",
                 {path(), buffer(), len()}, "", "file"));
  d.push_back(sc(Sysno::kChmod, "chmod",
                 {path(), plain("mode", 0, 07777, {0x1ff, 0})}, "", "file"));
  d.push_back(sc(Sysno::kMkdir, "mkdir",
                 {path(), plain("mode", 0, 07777, {0x1c0})}, "", "file"));
  d.push_back(sc(Sysno::kUnlink, "unlink", {path()}, "", "file"));
  d.push_back(sc(Sysno::kRename, "rename", {path("old"), path("new")}, "",
                 "file"));
  d.push_back(sc(Sysno::kFcntl, "fcntl",
                 {res("fd", "fd"), plain("cmd", 0, 16, {0, 1, 3, 4}),
                  plain("arg", 0, ~0ULL, {0})},
                 "", "file"));
  d.push_back(sc(Sysno::kFlock, "flock",
                 {res("fd", "fd"), plain("op", 0, 8, {1, 2, 8})}, "", "file"));

  // --- size / allocation (the SIGXFSZ family) ------------------------------
  d.push_back(sc(Sysno::kFallocate, "fallocate",
                 {res("fd", "fd"), flags("mode", {0x1, 0x2, 0x10, 0x20}),
                  plain("offset", 0, ~0ULL, {0, 1 << 20, 1ULL << 40, ~0ULL}),
                  plain("len", 0, ~0ULL,
                        {0, 4096, 1 << 20, 1ULL << 34, 1ULL << 62, ~0ULL})},
                 "", "size"));
  d.push_back(sc(Sysno::kFtruncate, "ftruncate",
                 {res("fd", "fd"),
                  plain("length", 0, ~0ULL,
                        {0, 4096, 1ULL << 31, 1ULL << 40, ~0ULL})},
                 "", "size"));

  // --- sync family ----------------------------------------------------------
  d.push_back(sc(Sysno::kSync, "sync", {}, "", "sync"));
  d.push_back(sc(Sysno::kSyncfs, "syncfs", {res("fd", "fd")}, "", "sync"));
  d.push_back(sc(Sysno::kFsync, "fsync", {res("fd", "fd")}, "", "sync"));
  d.push_back(sc(Sysno::kFdatasync, "fdatasync", {res("fd", "fd")}, "",
                 "sync"));
  d.push_back(sc(Sysno::kMsync, "msync",
                 {plain("addr", 0, ~0ULL, {0x7f0000000000}),
                  len("length"), flags("flags", {1, 2, 4})},
                 "", "sync"));

  // --- memory ---------------------------------------------------------------
  d.push_back(sc(Sysno::kMmap, "mmap",
                 {plain("addr", 0, ~0ULL, {0, 0x7f0000000000}),
                  plain("length", 0, 1ULL << 32,
                        {0x1000, 0x4000, 1 << 20, 0}),
                  flags("prot", kMmapProt), flags("flags", kMmapFlags),
                  plain("fd", 0, ~0ULL, {~0ULL}), constant("offset", 0)},
                 "", "mem"));
  d.push_back(sc(Sysno::kMunmap, "munmap",
                 {plain("addr", 0, ~0ULL, {0x7f0000000000}),
                  plain("length", 0, 1ULL << 32, {0x1000, 0})},
                 "", "mem"));
  d.push_back(sc(Sysno::kMadvise, "madvise",
                 {plain("addr", 0, ~0ULL, {0x7f0000000000}), len("length"),
                  plain("advice", 0, 25, {4, 8})},
                 "", "mem"));
  d.push_back(sc(Sysno::kMemfdCreate, "memfd_create",
                 {buffer("name"), flags("flags", {1, 2})}, "memfd", "mem"));

  // --- sockets ----------------------------------------------------------------
  d.push_back(sc(Sysno::kSocket, "socket",
                 {plain("family", 0, 50,
                        {1, 2, 3, 4, 5, 9, 10, 16, 17, 21, 44, 45}),
                  plain("type", 0, 0xF0000 | 7, {1, 2, 3, 5, 0x803}),
                  plain("protocol", 0, 300, {0, 6, 9, 17, 255})},
                 "sock", "net"));
  d.push_back(sc(Sysno::kSocket, "socket$netlink",
                 {constant("family", 16), constant("type", 3),
                  plain("protocol", 0, 25, {0, 9, 15})},
                 "sock", "net"));
  d.push_back(sc(Sysno::kSocket, "socket$inet",
                 {constant("family", 2), plain("type", 1, 3, {1, 2}),
                  plain("protocol", 0, 300, {0, 6, 17, 132})},
                 "sock", "net"));
  d.push_back(sc(Sysno::kSocketpair, "socketpair",
                 {plain("family", 0, 50, {1, 2, 4, 9, 16}),
                  plain("type", 1, 7, {1, 2, 3}),
                  plain("protocol", 0, 300, {0, 7, 9}), buffer("sv")},
                 "", "net"));
  d.push_back(sc(Sysno::kSendto, "sendto",
                 {res("fd", "sock"), buffer(), len(),
                  flags("flags", {0x40, 0x4000}), buffer("addr"),
                  plain("addrlen", 0, 128, {0xc, 16})},
                 "", "net"));
  d.push_back(sc(Sysno::kRecvfrom, "recvfrom",
                 {res("fd", "sock"), buffer(), len(),
                  flags("flags", {0x40, 0x100}), buffer("addr"),
                  plain("addrlen", 0, 128, {16})},
                 "", "net", /*blocks=*/true));
  d.push_back(sc(Sysno::kConnect, "connect",
                 {res("fd", "sock"), buffer("addr"),
                  plain("addrlen", 0, 128, {16})},
                 "", "net"));
  d.push_back(sc(Sysno::kBind, "bind",
                 {res("fd", "sock"), buffer("addr"),
                  plain("addrlen", 0, 128, {16})},
                 "", "net"));
  d.push_back(sc(Sysno::kListen, "listen",
                 {res("fd", "sock"), plain("backlog", 0, 4096, {0, 128})},
                 "", "net"));
  d.push_back(sc(Sysno::kShutdown, "shutdown",
                 {res("fd", "sock"), plain("how", 0, 2, {0, 1, 2})}, "",
                 "net"));
  d.push_back(sc(Sysno::kSetsockopt, "setsockopt",
                 {res("fd", "sock"), plain("level", 0, 300, {1, 6}),
                  plain("optname", 0, 100, {2, 9}), buffer("optval"),
                  plain("optlen", 0, 128, {4})},
                 "", "net"));

  // --- signals & process control ---------------------------------------------
  d.push_back(sc(Sysno::kRtSigreturn, "rt_sigreturn", {}, "", "signal"));
  d.push_back(sc(Sysno::kRseq, "rseq",
                 {plain("rseq", 0, ~0ULL,
                        {0, 0x7f0000000000, 0x7f0000000001, 0x20000ULL}),
                  plain("len", 0, 4096, {32, 0, 64}),
                  plain("flags", 0, 8, {0, 1, 2}),
                  plain("sig", 0, ~0ULL, {0x53053053})},
                 "", "signal"));
  d.push_back(sc(Sysno::kKill, "kill",
                 {plain("pid", 0, ~0ULL, {0, 1, 0x1586}),
                  plain("sig", 0, 64, {0, 9, 11, 15, 25})},
                 "", "signal"));
  d.push_back(sc(Sysno::kTgkill, "tgkill",
                 {plain("tgid", 0, ~0ULL, {0}), plain("tid", 0, ~0ULL, {0}),
                  plain("sig", 0, 64, {0, 6, 11})},
                 "", "signal"));
  d.push_back(sc(Sysno::kAlarm, "alarm",
                 {plain("seconds", 0, ~0ULL, {0, 1, 4, 0xffffffff})}, "",
                 "signal"));
  d.push_back(sc(Sysno::kExit, "exit", {plain("code", 0, 255, {0, 1})}, "",
                 "signal"));
  d.push_back(sc(Sysno::kPause, "pause", {}, "", "signal", /*blocks=*/true));

  // --- process info -----------------------------------------------------------
  d.push_back(sc(Sysno::kGetpid, "getpid", {}, "pid", "proc"));
  d.push_back(sc(Sysno::kGetuid, "getuid", {}, "", "proc"));
  d.push_back(sc(Sysno::kGeteuid, "geteuid", {}, "", "proc"));
  d.push_back(sc(Sysno::kSetuid, "setuid",
                 {plain("uid", 0, ~0ULL, {0, 0xfffe, 0xffffffff})}, "",
                 "proc"));
  d.push_back(sc(Sysno::kUmask, "umask", {plain("mask", 0, 0777, {022})}, "",
                 "proc"));
  d.push_back(sc(Sysno::kGetrlimit, "getrlimit",
                 {plain("resource", 0, 0x1000, {0, 1, 7, 0x3e8}),
                  buffer("rlim")},
                 "", "proc"));
  d.push_back(sc(Sysno::kSetrlimit, "setrlimit",
                 {plain("resource", 0, 0x1000, {1, 7}),
                  plain("value", 0, ~0ULL, {0, 4096, 1ULL << 30, ~0ULL})},
                 "", "proc"));
  d.push_back(sc(Sysno::kKcmp, "kcmp",
                 {plain("pid1", 0, ~0ULL, {0, 0x1586}),
                  plain("pid2", 0, ~0ULL, {0}),
                  plain("type", 0, 16, {0, 3, 9}),
                  plain("idx1", 0, ~0ULL, {0}), plain("idx2", 0, ~0ULL, {0})},
                 "", "proc"));
  d.push_back(sc(Sysno::kPrctl, "prctl",
                 {plain("option", 0, 72, {1, 4, 15}),
                  plain("arg2", 0, ~0ULL, {0})},
                 "", "proc"));
  d.push_back(sc(Sysno::kSchedYield, "sched_yield", {}, "", "proc"));
  d.push_back(sc(Sysno::kUname, "uname", {buffer("utsname")}, "", "proc"));
  d.push_back(sc(Sysno::kSysinfo, "sysinfo", {buffer("info")}, "", "proc"));
  d.push_back(sc(Sysno::kTimes, "times", {buffer("tms")}, "", "proc"));
  d.push_back(sc(Sysno::kClockGettime, "clock_gettime",
                 {plain("clk", 0, 11, {0, 1}), buffer("ts")}, "", "proc"));

  // --- xattr ---------------------------------------------------------------
  d.push_back(sc(Sysno::kSetxattr, "setxattr",
                 {path(), buffer("name"), buffer("value"), len("size"),
                  plain("flags", 0, 2, {0, 1, 2})},
                 "", "xattr"));
  d.push_back(sc(Sysno::kGetxattr, "getxattr",
                 {path(), buffer("name"), buffer("value"),
                  plain("size", 0, 1 << 16, {0, 21, 4096})},
                 "", "xattr"));

  // --- watch / event fds -----------------------------------------------------
  d.push_back(sc(Sysno::kInotifyInit, "inotify_init", {}, "inotifyfd",
                 "inotify"));
  d.push_back(sc(Sysno::kInotifyAddWatch, "inotify_add_watch",
                 {res("fd", "inotifyfd"), path(),
                  flags("mask", {0x1, 0x2, 0x4, 0x100, 0xfff})},
                 "", "inotify"));
  d.push_back(sc(Sysno::kEpollCreate1, "epoll_create1",
                 {flags("flags", {0x80000})}, "epollfd", "inotify"));
  d.push_back(sc(Sysno::kEventfd2, "eventfd2",
                 {plain("initval", 0, ~0ULL, {0}),
                  flags("flags", {0x1, 0x800, 0x80000})},
                 "eventfd", "inotify"));
  d.push_back(sc(Sysno::kMqOpen, "mq_open",
                 {buffer("name"), flags("oflag", {0x1, 0x2, 0x40, 0x800}),
                  plain("mode", 0, 07777, {0600}), buffer("attr")},
                 "mqd", "inotify"));

  // --- timing / blocking ------------------------------------------------------
  d.push_back(sc(Sysno::kNanosleep, "nanosleep",
                 {plain("ns", 0, ~0ULL,
                        {0, 1000, 1'000'000, 100'000'000'000ULL}),
                  buffer("rem")},
                 "", "time", /*blocks=*/true));
  d.push_back(sc(Sysno::kPoll, "poll",
                 {buffer("fds"), plain("nfds", 0, 64, {0, 1}),
                  plain("timeout_ms", 0, ~0ULL, {0, 100, 10'000})},
                 "", "time", /*blocks=*/true));
  d.push_back(sc(Sysno::kIoctl, "ioctl",
                 {res("fd", "fd"),
                  plain("request", 0, ~0ULL,
                        {0x80087601, 0xc02064a5, 0x5401}),
                  buffer("argp")},
                 "", "file"));
  d.push_back(sc(Sysno::kPipe, "pipe", {buffer("fds")}, "", "file"));

  for (const SyscallDesc& desc : d) {
    TORPEDO_CHECK_MSG(!desc.name.empty(), "unnamed syscall desc");
  }
}

const SyscallTable& SyscallTable::instance() {
  static const SyscallTable table;
  return table;
}

const SyscallDesc* SyscallTable::by_name(std::string_view name) const {
  for (const SyscallDesc& d : descs_)
    if (d.name == name) return &d;
  return nullptr;
}

std::vector<const SyscallDesc*> SyscallTable::producers_of(
    std::string_view kind) const {
  std::vector<const SyscallDesc*> out;
  for (const SyscallDesc& d : descs_)
    if (!d.produces.empty() && resource_compatible(kind, d.produces))
      out.push_back(&d);
  return out;
}

std::vector<const SyscallDesc*> SyscallTable::interface(
    std::string_view name) const {
  std::vector<const SyscallDesc*> out;
  for (const SyscallDesc& d : descs_)
    if (d.interface == name) out.push_back(&d);
  return out;
}

}  // namespace torpedo::prog
