// Syscall descriptions: the "syzlang" subset Torpedo understands.
//
// Each description models one syscall (or a narrowed variant, syzkaller's
// `socket$netlink` style): argument kinds, interesting values, flag
// vocabularies, and the resource kind the call produces/consumes. The
// generator and mutator are driven entirely by this table, so adding a
// syscall is a table edit.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace torpedo::prog {

enum class ArgKind {
  kIntPlain,   // numeric with range + special values
  kIntFlags,   // OR-combination of a flag vocabulary
  kResource,   // consumes a resource produced by an earlier call (fd, sock)
  kPath,       // filesystem path string
  kBuffer,     // in-memory data (paths into dynamic memory in syzkaller)
  kLen,        // length of the preceding buffer
  kConst,      // fixed value (variant-narrowed argument)
};

struct ArgDesc {
  ArgKind kind = ArgKind::kIntPlain;
  std::string name;
  std::uint64_t min = 0;
  std::uint64_t max = ~0ULL;
  std::vector<std::uint64_t> specials;  // kIntPlain: interesting values
  std::vector<std::uint64_t> flags;     // kIntFlags: vocabulary bits
  std::string resource;                 // kResource: required kind
  std::uint64_t const_val = 0;          // kConst
};

struct SyscallDesc {
  int nr = 0;
  std::string name;       // "socket" or variant "socket$netlink"
  std::vector<ArgDesc> args;
  std::string produces;   // resource kind of the return value ("" = none)
  bool blocks = false;    // known to send the caller to sleep (denylist bait)
  // Interface family used for seed grouping and the generator's bias table.
  std::string interface;  // "file", "net", "signal", "mem", "proc", ...
};

// True if a resource of kind `have` can be passed where `want` is expected
// (every descriptor kind degrades to a plain "fd").
bool resource_compatible(std::string_view want, std::string_view have);

class SyscallTable {
 public:
  static const SyscallTable& instance();

  std::span<const SyscallDesc> all() const { return descs_; }
  const SyscallDesc* by_name(std::string_view name) const;
  // All descriptions producing a resource compatible with `kind`.
  std::vector<const SyscallDesc*> producers_of(std::string_view kind) const;
  // All descriptions in an interface family.
  std::vector<const SyscallDesc*> interface(std::string_view name) const;

 private:
  SyscallTable();
  std::vector<SyscallDesc> descs_;
};

}  // namespace torpedo::prog
