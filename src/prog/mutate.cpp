#include "prog/mutate.h"

#include <algorithm>

#include "util/check.h"

namespace torpedo::prog {

MutationOp Mutator::mutate(Program& program, std::span<const Program> corpus) {
  Rng& rng = generator_.rng();
  last_ops_.clear();
  last_donor_hash_ = 0;
  MutationOp last = MutationOp::kMutateArg;
  int guard = 0;
  do {
    last = apply_once(program, corpus);
  } while (!rng.chance(1, 3) && ++guard < 6);
  return last;
}

MutationOp Mutator::mutate(Program& program,
                           std::span<const Program* const> corpus) {
  Rng& rng = generator_.rng();
  last_ops_.clear();
  last_donor_hash_ = 0;
  MutationOp last = MutationOp::kMutateArg;
  int guard = 0;
  do {
    last = apply_once(program, corpus);
  } while (!rng.chance(1, 3) && ++guard < 6);
  return last;
}

MutationOp Mutator::mutate_once(Program& program,
                                std::span<const Program> corpus) {
  last_ops_.clear();
  last_donor_hash_ = 0;
  return apply_once(program, corpus);
}

MutationOp Mutator::mutate_once(Program& program,
                                std::span<const Program* const> corpus) {
  last_ops_.clear();
  last_donor_hash_ = 0;
  return apply_once(program, corpus);
}

MutationOp Mutator::apply_once(Program& program,
                               std::span<const Program> corpus) {
  Rng& rng = generator_.rng();
  double splice_w = corpus.empty() ? 0.0 : config_.splice_weight;
  // "Add a call ... is less likely when the program is at or near max
  // length"; "remove ... is less likely when the program is very small".
  double insert_w = program.size() >= config_.max_calls
                        ? config_.insert_weight * 0.1
                        : config_.insert_weight;
  double remove_w = program.size() <= 1 ? config_.remove_weight * 0.1
                                        : config_.remove_weight;
  const double weights[] = {splice_w, insert_w, remove_w,
                            config_.mutate_arg_weight};
  const std::size_t pick = rng.weighted(weights);

  switch (pick) {
    case 0: {
      const Program& donor = corpus[rng.below(corpus.size())];
      last_donor_hash_ = donor.hash();
      splice(program, donor);
      last_ops_.push_back(MutationOp::kSplice);
      return MutationOp::kSplice;
    }
    case 1:
      insert_call(program);
      last_ops_.push_back(MutationOp::kInsertCall);
      return MutationOp::kInsertCall;
    case 2:
      remove_call(program);
      last_ops_.push_back(MutationOp::kRemoveCall);
      return MutationOp::kRemoveCall;
    default:
      mutate_arg(program);
      last_ops_.push_back(MutationOp::kMutateArg);
      return MutationOp::kMutateArg;
  }
}

MutationOp Mutator::apply_once(Program& program,
                               std::span<const Program* const> corpus) {
  Rng& rng = generator_.rng();
  double splice_w = corpus.empty() ? 0.0 : config_.splice_weight;
  double insert_w = program.size() >= config_.max_calls
                        ? config_.insert_weight * 0.1
                        : config_.insert_weight;
  double remove_w = program.size() <= 1 ? config_.remove_weight * 0.1
                                        : config_.remove_weight;
  const double weights[] = {splice_w, insert_w, remove_w,
                            config_.mutate_arg_weight};
  const std::size_t pick = rng.weighted(weights);

  switch (pick) {
    case 0: {
      const Program& donor = *corpus[rng.below(corpus.size())];
      last_donor_hash_ = donor.hash();
      splice(program, donor);
      last_ops_.push_back(MutationOp::kSplice);
      return MutationOp::kSplice;
    }
    case 1:
      insert_call(program);
      last_ops_.push_back(MutationOp::kInsertCall);
      return MutationOp::kInsertCall;
    case 2:
      remove_call(program);
      last_ops_.push_back(MutationOp::kRemoveCall);
      return MutationOp::kRemoveCall;
    default:
      mutate_arg(program);
      last_ops_.push_back(MutationOp::kMutateArg);
      return MutationOp::kMutateArg;
  }
}

void Mutator::splice(Program& program, const Program& donor) {
  if (donor.empty()) return;
  Rng& rng = generator_.rng();
  // Take a run of sequential calls from the donor and insert it at a random
  // point; references inside the run are re-based, references into the rest
  // of the donor are repaired by fixup().
  const std::size_t run_start = rng.below(donor.size());
  const std::size_t run_len =
      1 + rng.below(donor.size() - run_start);
  const std::size_t insert_at = rng.below(program.size() + 1);

  std::vector<Call> run(donor.calls().begin() +
                            static_cast<std::ptrdiff_t>(run_start),
                        donor.calls().begin() +
                            static_cast<std::ptrdiff_t>(run_start + run_len));
  for (Call& call : run) {
    for (ArgValue& value : call.args) {
      if (value.kind != ArgValue::Kind::kResult) continue;
      if (value.result_of >= static_cast<int>(run_start) &&
          value.result_of < static_cast<int>(run_start + run_len)) {
        value.result_of = value.result_of - static_cast<int>(run_start) +
                          static_cast<int>(insert_at);
      } else {
        value.result_of = -1;  // dangles; fixup rebinds or degrades it
      }
    }
  }

  // Shift references in the tail of the receiving program.
  for (std::size_t i = insert_at; i < program.size(); ++i)
    for (ArgValue& value : program.calls()[i].args)
      if (value.kind == ArgValue::Kind::kResult &&
          value.result_of >= static_cast<int>(insert_at))
        value.result_of += static_cast<int>(run_len);

  program.calls().insert(program.calls().begin() +
                             static_cast<std::ptrdiff_t>(insert_at),
                         run.begin(), run.end());
  while (program.size() > config_.max_calls) {
    program.calls().pop_back();
  }
  program.fixup();
  TORPEDO_CHECK(program.valid());
}

void Mutator::insert_call(Program& program) {
  if (program.size() >= config_.max_calls) return;
  generator_.insert_biased_call(program);
  TORPEDO_CHECK(program.valid());
}

void Mutator::remove_call(Program& program) {
  if (program.size() <= 1) return;
  Rng& rng = generator_.rng();
  const std::size_t victim = rng.below(program.size());
  program.calls().erase(program.calls().begin() +
                        static_cast<std::ptrdiff_t>(victim));
  for (std::size_t i = victim; i < program.size(); ++i) {
    for (ArgValue& value : program.calls()[i].args) {
      if (value.kind != ArgValue::Kind::kResult) continue;
      if (value.result_of == static_cast<int>(victim))
        value.result_of = -1;
      else if (value.result_of > static_cast<int>(victim))
        --value.result_of;
    }
  }
  program.fixup();
  TORPEDO_CHECK(program.valid());
}

void Mutator::mutate_arg(Program& program) {
  if (program.empty()) return;
  Rng& rng = generator_.rng();
  const std::size_t call_index = rng.below(program.size());
  Call& call = program.calls()[call_index];
  if (call.args.empty()) {
    // No arguments to perturb (sync(), pause(), ...): fall back to insert.
    insert_call(program);
    return;
  }
  const std::size_t arg_index = rng.below(call.args.size());
  call.args[arg_index] = generator_.random_arg(
      program, call_index, call.desc->args[arg_index]);
  program.fixup();
  TORPEDO_CHECK(program.valid());
}

}  // namespace torpedo::prog
